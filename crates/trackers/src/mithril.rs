//! Mithril: in-DRAM counter-based tracking that mitigates under RFM.
//!
//! Mithril (Kim et al., HPCA 2022) keeps a Counter-based Summary (a Misra-Gries style
//! table) inside the DRAM device. The memory controller issues an RFM command every
//! `RFMTH` activations; on each RFM, Mithril refreshes the victims of the row with the
//! highest counter and rolls that counter back. Because the mitigation happens under
//! RFM, Mithril adds no performance overhead beyond the RFM commands the system already
//! issues (§ Appendix-A).
//!
//! Under ImPress-P the counters accumulate fractional [`Eact`] values (7 extra bits per
//! entry); the entry count stays the same (§VI-C).
//!
//! # Eviction engines and the observational-equivalence contract
//!
//! Mithril's summary needs both ends of the count order: a *minimum*-count entry
//! to displace on a miss (when the minimum is at or below the spillover count)
//! and the *maximum*-count entry to mitigate under RFM. The seed found both with
//! linear scans; the [`EvictionEngine::Summary`] engine reads them off the two
//! ends of a [`CountSummary`] bucket list in O(1). The engines agree on *when*
//! evictions and RFM mitigations happen and on every victim choice that is
//! unambiguous (a unique minimum / unique maximum); among tied counts they may
//! pick different rows, but both stay within the Misra-Gries error bound (any
//! row's untracked weight ≤ spillover ≤ total-weight/entries), so the RFM
//! mitigation stream keeps the same security guarantee. The `summary_equivalence`
//! proptest suite and the security-harness A/B gate enforce exactly this
//! contract, and the periodic RFM roll-back (`count := spillover`, a *decrement*)
//! is exercised by the bucket-ordering round-trip properties.
//!
//! Invalid entries are claimed **before** min-count eviction in both engines (the
//! scan stops at the first invalid entry; the summary engine pops an explicit
//! free-slot list before consulting the summary). An RFM roll-back to a zero
//! spillover leaves a valid zero-count entry that a validity-blind min-eviction
//! would displace while free slots remain — the priority inversion this explicit
//! invariant (and its unit tests, in both engines) rules out.

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;

use crate::analysis::mithril_entries;
use crate::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use crate::index::RowSlotIndex;
use crate::storage::{StorageEstimate, COUNTER_BITS, ROW_ADDRESS_BITS};
use crate::summary::{engine_scaffolding, restock_free_slots, CountSummary, EvictionEngine};
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

#[derive(Debug, Clone, Copy)]
struct Entry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// Configuration for a [`Mithril`] tracker instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MithrilConfig {
    /// Rowhammer threshold this instance must tolerate.
    pub threshold: u64,
    /// RFM threshold (activations per RFM command) assumed by the sizing.
    pub rfm_threshold: u32,
    /// Number of table entries per bank.
    pub entries: usize,
    /// Number of fractional EACT bits stored per counter.
    pub frac_bits: u32,
}

impl MithrilConfig {
    /// Configuration for tolerating `threshold` at the paper's default RFMTH of 80.
    pub fn for_threshold(threshold: u64) -> Self {
        Self::with_rfm_threshold(threshold, 80)
    }

    /// Configuration for tolerating `threshold` at an explicit RFM threshold.
    pub fn with_rfm_threshold(threshold: u64, rfm_threshold: u32) -> Self {
        let entries = mithril_entries(threshold, rfm_threshold);
        Self {
            threshold,
            rfm_threshold,
            entries: entries.min(1 << 20) as usize,
            frac_bits: 0,
        }
    }

    /// Adds ImPress-P fractional counter bits to this configuration.
    pub fn with_frac_bits(mut self, frac_bits: u32) -> Self {
        self.frac_bits = frac_bits;
        self
    }
}

/// The Mithril tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Mithril {
    config: MithrilConfig,
    engine: EvictionEngine,
    table: Vec<Entry>,
    /// O(1) row → slot map over the valid table entries (pure acceleration of the
    /// match path; victim selection is the eviction engine's job — see
    /// [`crate::index`] and [`crate::summary`]).
    index: RowSlotIndex,
    /// Count-ordered view of the valid entries (summary engine only; empty and
    /// unmaintained under the scan engine).
    summary: CountSummary,
    /// Invalid slots awaiting their first row, popped before any eviction is
    /// considered (summary engine only) — the explicit form of the
    /// invalid-before-eviction invariant.
    free_slots: Vec<u32>,
    spillover: EactCounter,
    mitigations: u64,
}

impl Mithril {
    /// Creates a Mithril tracker sized for `threshold` at RFMTH = 80, using the
    /// [`EvictionEngine::from_env`] default engine.
    pub fn for_threshold(threshold: u64) -> Self {
        Self::new(MithrilConfig::for_threshold(threshold))
    }

    /// Creates a Mithril tracker from an explicit configuration, using the
    /// [`EvictionEngine::from_env`] default engine.
    pub fn new(config: MithrilConfig) -> Self {
        Self::with_engine(config, EvictionEngine::from_env())
    }

    /// Creates a Mithril tracker with an explicit eviction engine (A/B testing
    /// and the equivalence suites use this to pin each side).
    pub fn with_engine(config: MithrilConfig, engine: EvictionEngine) -> Self {
        let table = vec![
            Entry {
                row: 0,
                count: EactCounter::ZERO,
                valid: false,
            };
            config.entries
        ];
        let index = RowSlotIndex::for_entries(config.entries);
        let (summary, free_slots) = engine_scaffolding(config.entries, engine);
        Self {
            config,
            engine,
            table,
            index,
            summary,
            free_slots,
            spillover: EactCounter::ZERO,
            mitigations: 0,
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> &MithrilConfig {
        &self.config
    }

    /// The eviction engine this tracker runs on.
    pub fn engine(&self) -> EvictionEngine {
        self.engine
    }

    /// Number of mitigations performed under RFM so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Current counter value for `row` (whole activations), if tracked.
    pub fn tracked_count(&self, row: RowId) -> Option<u64> {
        self.index
            .get(row)
            .map(|slot| self.table[slot].count.activations())
    }

    /// Current raw (Q7 fixed-point) counter value for `row`, if tracked — the
    /// exact quantity the equivalence and error-bound suites reason about.
    pub fn tracked_raw(&self, row: RowId) -> Option<u64> {
        self.index.get(row).map(|slot| self.table[slot].count.raw())
    }

    /// Raw (Q7 fixed-point) spillover count — the Misra-Gries error term.
    pub fn spillover_raw(&self) -> u64 {
        self.spillover.raw()
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.config.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.config.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }

    /// Installs the missing `row` at `count` in `slot` (index and, under the
    /// summary engine, summary kept in lockstep).
    fn install(&mut self, slot: usize, row: RowId, count: EactCounter) {
        self.table[slot] = Entry {
            row,
            count,
            valid: true,
        };
        self.index.insert(row, slot);
    }
}

impl RowTracker for Mithril {
    fn record(&mut self, row: RowId, eact: Eact, _now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        // The match path is O(1) via the row → slot index; only when the row is
        // absent does the eviction engine pick a slot (O(1) under the summary
        // engine, O(entries) under the seed's scan). Mithril never mitigates
        // outside of RFM, so every path returns `None`.
        match self.engine {
            EvictionEngine::Scan => {
                if let Some(slot) = self.index.get(row) {
                    self.table[slot].count.add(eact);
                    return None;
                }
                let mut count = self.spillover;
                count.add(eact);
                let mut first_invalid = usize::MAX;
                let mut min_idx = 0usize;
                let mut min_raw = u64::MAX;
                for (i, e) in self.table.iter().enumerate() {
                    if !e.valid {
                        // Invalid entries take priority over the minimum-count
                        // eviction wherever they sit, so the scan can stop at the
                        // first one.
                        first_invalid = i;
                        break;
                    }
                    if e.count.raw() < min_raw {
                        min_raw = e.count.raw();
                        min_idx = i;
                    }
                }
                if first_invalid != usize::MAX {
                    self.install(first_invalid, row, count);
                } else if min_raw <= self.spillover.raw() {
                    self.index.remove(self.table[min_idx].row);
                    self.install(min_idx, row, count);
                } else {
                    self.spillover.add(eact);
                }
            }
            EvictionEngine::Summary => {
                // `locate` hands the miss position straight to `insert_at`, so a
                // miss costs one probe; the insert happens before the victim is
                // removed, keeping the position valid.
                let position = match self.index.locate(row) {
                    Ok(slot) => {
                        self.table[slot].count.add(eact);
                        self.summary.set_count(slot, self.table[slot].count.raw());
                        return None;
                    }
                    Err(position) => position,
                };
                let mut count = self.spillover;
                count.add(eact);
                if let Some(free) = self.free_slots.pop() {
                    let slot = free as usize;
                    self.index.insert_at(position, row, slot);
                    self.table[slot] = Entry {
                        row,
                        count,
                        valid: true,
                    };
                    self.summary.attach(slot, count.raw());
                } else {
                    // A minimum-count entry is displaceable exactly when the seed
                    // scan would displace its minimum; the fused call checks the
                    // condition, unlinks the victim and re-links it at the new
                    // count in one pass.
                    match self
                        .summary
                        .evict_min_if_at_most(self.spillover.raw(), count.raw())
                    {
                        Some(slot) => {
                            debug_assert!(
                                self.free_slots.is_empty(),
                                "eviction considered while invalid slots remain"
                            );
                            self.index.insert_at(position, row, slot);
                            self.index.remove(self.table[slot].row);
                            self.table[slot] = Entry {
                                row,
                                count,
                                valid: true,
                            };
                        }
                        None => self.spillover.add(eact),
                    }
                }
            }
        }
        None
    }

    fn record_batch(
        &mut self,
        rows: &[RowId],
        eacts: &[Eact],
        _now: Cycle,
        _out: &mut Vec<MitigationRequest>,
    ) {
        debug_assert_eq!(rows.len(), eacts.len());
        let mut i = 0;
        while i < rows.len() {
            let row = rows[i];
            let mut j = i + 1;
            while j < rows.len() && rows[j] == row {
                j += 1;
            }
            // Resolve one slot for the whole run. On a miss the per-record
            // claim attempts are replayed exactly (each failed attempt spills
            // that event's weight; the claiming attempt installs at
            // spillover + eact, absorbing its own event) until one sticks.
            let mut k = i;
            let slot = match self.engine {
                EvictionEngine::Scan => match self.index.get(row) {
                    Some(slot) => Some(slot),
                    None => loop {
                        if k == j {
                            break None;
                        }
                        let eact = self.quantize(eacts[k]);
                        let mut count = self.spillover;
                        count.add(eact);
                        let mut first_invalid = usize::MAX;
                        let mut min_idx = 0usize;
                        let mut min_raw = u64::MAX;
                        for (s, e) in self.table.iter().enumerate() {
                            if !e.valid {
                                first_invalid = s;
                                break;
                            }
                            if e.count.raw() < min_raw {
                                min_raw = e.count.raw();
                                min_idx = s;
                            }
                        }
                        if first_invalid != usize::MAX {
                            self.install(first_invalid, row, count);
                            k += 1;
                            break Some(first_invalid);
                        } else if min_raw <= self.spillover.raw() {
                            self.index.remove(self.table[min_idx].row);
                            self.install(min_idx, row, count);
                            k += 1;
                            break Some(min_idx);
                        }
                        self.spillover.add(eact);
                        k += 1;
                    },
                },
                EvictionEngine::Summary => match self.index.locate(row) {
                    Ok(slot) => Some(slot),
                    Err(position) => loop {
                        // `position` stays valid across failed attempts: a
                        // failed claim only grows the spillover counter.
                        if k == j {
                            break None;
                        }
                        let eact = self.quantize(eacts[k]);
                        let mut count = self.spillover;
                        count.add(eact);
                        if let Some(free) = self.free_slots.pop() {
                            let slot = free as usize;
                            self.index.insert_at(position, row, slot);
                            self.table[slot] = Entry {
                                row,
                                count,
                                valid: true,
                            };
                            self.summary.attach(slot, count.raw());
                            k += 1;
                            break Some(slot);
                        }
                        match self
                            .summary
                            .evict_min_if_at_most(self.spillover.raw(), count.raw())
                        {
                            Some(slot) => {
                                debug_assert!(
                                    self.free_slots.is_empty(),
                                    "eviction considered while invalid slots remain"
                                );
                                self.index.insert_at(position, row, slot);
                                self.index.remove(self.table[slot].row);
                                self.table[slot] = Entry {
                                    row,
                                    count,
                                    valid: true,
                                };
                                k += 1;
                                break Some(slot);
                            }
                            None => {
                                self.spillover.add(eact);
                                k += 1;
                            }
                        }
                    },
                },
            };
            let Some(slot) = slot else {
                // The entire run went to the spillover counter.
                i = j;
                continue;
            };

            // Run-length aggregation of the remaining events: Mithril never
            // mitigates in `record`, so the whole tail collapses into one
            // weighted add and (under the summary engine) one splice.
            let mut sum = 0u64;
            for &e in &eacts[k..j] {
                sum = sum.saturating_add(u64::from(self.quantize(e).raw()));
            }
            if sum > 0 {
                let final_raw = self.table[slot].count.raw().saturating_add(sum);
                self.table[slot].count = EactCounter::from_raw(final_raw);
                if self.engine == EvictionEngine::Summary {
                    self.summary.set_count(slot, final_raw);
                }
            }
            i = j;
        }
    }

    fn headroom(&self) -> u64 {
        // `record` never returns a mitigation (Mithril only mitigates under
        // RFM, and batch stagers flush before every RFM), so any weight can be
        // deferred.
        u64::MAX
    }

    fn mitigates_on_rfm(&self) -> bool {
        true
    }

    fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        let (slot, max_raw) = match self.engine {
            EvictionEngine::Scan => {
                let (slot, best) = self
                    .table
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.valid)
                    .max_by_key(|(_, e)| e.count.raw())?;
                (slot, best.count.raw())
            }
            EvictionEngine::Summary => self.summary.max()?,
        };
        if max_raw == 0 {
            return None;
        }
        let aggressor = self.table[slot].row;
        // Roll the mitigated row's counter back to the spillover value (a
        // *decrement* whenever any activation spilled since the last reset).
        self.table[slot].count = self.spillover;
        if self.engine == EvictionEngine::Summary {
            self.summary.set_count(slot, self.spillover.raw());
        }
        self.mitigations += 1;
        Some(MitigationRequest {
            aggressor,
            identified_at: now,
        })
    }

    fn on_refresh_window(&mut self, _now: Cycle) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.index.clear();
        if self.engine == EvictionEngine::Summary {
            self.summary.clear();
            restock_free_slots(&mut self.free_slots, self.config.entries);
        }
        self.spillover = EactCounter::ZERO;
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Mithril
    }

    fn storage(&self) -> StorageEstimate {
        StorageEstimate::per_entry(
            self.config.entries as u64,
            ROW_ADDRESS_BITS + COUNTER_BITS + self.config.frac_bits,
        )
    }

    fn configured_threshold(&self) -> u64 {
        self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_383_entries() {
        let m = Mithril::for_threshold(4_000);
        assert!(
            (375..=395).contains(&m.config().entries),
            "{}",
            m.config().entries
        );
    }

    #[test]
    fn rfm_mitigates_the_hottest_row() {
        let mut m = Mithril::for_threshold(4_000);
        for i in 0..200u64 {
            m.record(11, Eact::ONE, i * 128);
            if i % 4 == 0 {
                m.record(22, Eact::ONE, i * 128 + 64);
            }
        }
        let mitigation = m.on_rfm(100_000).expect("RFM should mitigate");
        assert_eq!(mitigation.aggressor, 11);
    }

    #[test]
    fn record_never_mitigates_directly() {
        let mut m = Mithril::for_threshold(4_000);
        for i in 0..10_000u64 {
            assert!(m.record(3, Eact::ONE, i * 128).is_none());
        }
    }

    #[test]
    fn rfm_on_empty_table_is_none() {
        let mut m = Mithril::for_threshold(4_000);
        assert!(m.on_rfm(0).is_none());
    }

    #[test]
    fn bounded_unmitigated_activations_under_rfm_cadence() {
        // If the controller issues RFM every 80 activations (the paper's RFMTH), the
        // hottest row's count between mitigations stays far below the 4K threshold.
        let mut m = Mithril::for_threshold(4_000);
        let mut hot_count_since_mitigation = 0u64;
        let mut max_seen = 0u64;
        for i in 0..1_000_000u64 {
            let row = if i % 2 == 0 {
                7
            } else {
                (i % 512) as RowId + 100
            };
            if row == 7 {
                hot_count_since_mitigation += 1;
            }
            m.record(row, Eact::ONE, i * 128);
            if i % 80 == 79 {
                if let Some(req) = m.on_rfm(i * 128) {
                    if req.aggressor == 7 {
                        max_seen = max_seen.max(hot_count_since_mitigation);
                        hot_count_since_mitigation = 0;
                    }
                }
            }
        }
        max_seen = max_seen.max(hot_count_since_mitigation);
        assert!(
            max_seen < 4_000,
            "aggressor escaped with {max_seen} activations"
        );
    }

    /// The invalid-before-eviction invariant, in the exact state where a naive
    /// min-count eviction would invert it: an RFM mitigation rolls the hottest
    /// row's counter back to the (zero) spillover value while invalid slots
    /// remain, so a subsequent miss sees a valid zero-count entry *and* free
    /// slots. The new row must claim a free slot and the rolled-back row must
    /// stay tracked.
    #[test]
    fn invalid_slots_claimed_before_zero_count_eviction_in_both_engines() {
        for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
            let config = MithrilConfig {
                threshold: 4_000,
                rfm_threshold: 80,
                entries: 4,
                frac_bits: 0,
            };
            let mut m = Mithril::with_engine(config, engine);
            for i in 0..5u64 {
                m.record(7, Eact::ONE, i * 128);
            }
            let req = m.on_rfm(1_000).expect("row 7 is the unique maximum");
            assert_eq!(req.aggressor, 7, "{engine}");
            assert_eq!(m.tracked_count(7), Some(0), "{engine}: rolled back to 0");
            // A miss now must claim an invalid slot, not evict the zero-count row 7
            // (whose count equals the spillover count and is therefore displaceable).
            m.record(99, Eact::ONE, 2_000);
            assert_eq!(
                m.tracked_count(7),
                Some(0),
                "{engine}: zero-count row evicted while invalid slots remained"
            );
            assert_eq!(m.tracked_count(99), Some(1), "{engine}");
        }
    }

    /// Scan and summary engines stay in lockstep (records and RFM mitigations) on
    /// streams whose min/max choices are always unambiguous: a hot set that fits
    /// the table with distinct per-row weights (unique maxima for RFM), and a
    /// single-entry table where every eviction and every RFM has exactly one
    /// candidate. The ambiguity-aware general property lives in
    /// `tests/summary_equivalence.rs`.
    #[test]
    fn engines_agree_on_unambiguous_streams() {
        let lockstep = |entries: usize, rows: u32| {
            let config = MithrilConfig {
                threshold: 4_000,
                rfm_threshold: 80,
                entries,
                frac_bits: 7,
            };
            let mut scan = Mithril::with_engine(config.clone(), EvictionEngine::Scan);
            let mut summary = Mithril::with_engine(config, EvictionEngine::Summary);
            let mut mitigations = 0u64;
            for i in 0..40_000u64 {
                let row = (i % u64::from(rows)) as RowId;
                // Distinct per-row weights keep tracked counts unique.
                let eact = Eact::from_f64(1.0 + (row as f64) / 8.0, 7);
                assert_eq!(
                    scan.record(row, eact, i * 128),
                    summary.record(row, eact, i * 128),
                    "entries={entries}: diverged at record {i}"
                );
                if i % 80 == 79 {
                    let a = scan.on_rfm(i * 128);
                    assert_eq!(a, summary.on_rfm(i * 128), "entries={entries}: RFM {i}");
                    mitigations += u64::from(a.is_some());
                }
            }
            assert_eq!(scan.mitigations(), summary.mitigations());
            assert!(mitigations > 0, "entries={entries}: stream too tame");
            assert_eq!(scan.spillover_raw(), summary.spillover_raw());
            for row in 0..rows {
                assert_eq!(
                    scan.tracked_raw(row),
                    summary.tracked_raw(row),
                    "entries={entries} row {row}"
                );
            }
        };
        lockstep(8, 8); // matches + RFM roll-backs, no eviction
        lockstep(1, 5); // forced (unique-candidate) evictions + spillover growth
    }

    #[test]
    fn storage_with_frac_bits_is_1_25x() {
        let plain = Mithril::for_threshold(4_000);
        let precise = Mithril::new(MithrilConfig::for_threshold(4_000).with_frac_bits(7));
        let ratio = precise.storage().relative_to(&plain.storage());
        assert!(ratio > 1.15 && ratio < 1.3, "ratio = {ratio}");
    }
}
