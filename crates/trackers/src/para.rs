//! PARA: Probabilistic Adjacent Row Activation at the memory controller.
//!
//! PARA (Kim et al., ISCA 2014) mitigates each activation with a small probability `p`
//! chosen from the Rowhammer threshold and the target failure rate (p = 1/184 for
//! TRH = 4K in the paper's methodology). Under ImPress-P the probability of each
//! decision is scaled by the activation's EACT: `p̂ = p × EACT` (§VI-C), so a row held
//! open for a long time is proportionally more likely to be mitigated.

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::analysis::para_probability;
use crate::eact::Eact;
use crate::storage::StorageEstimate;
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

/// The PARA tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Para {
    threshold: u64,
    probability: f64,
    rng: SmallRng,
    decisions: u64,
    mitigations: u64,
}

impl Para {
    /// Creates a PARA instance for Rowhammer threshold `trh` using the paper's
    /// reliability methodology (p = 1/184 at TRH = 4K), with a deterministic seed.
    pub fn for_threshold(trh: u64) -> Self {
        Self::with_probability(trh, para_probability(trh), 0x5EED_0001)
    }

    /// Creates a PARA instance with an explicit probability and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `(0, 1]`.
    pub fn with_probability(trh: u64, probability: f64, seed: u64) -> Self {
        assert!(
            probability > 0.0 && probability <= 1.0,
            "PARA probability must be in (0, 1]"
        );
        Self {
            threshold: trh,
            probability,
            rng: SmallRng::seed_from_u64(seed),
            decisions: 0,
            mitigations: 0,
        }
    }

    /// The base per-activation mitigation probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Number of sampling decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }
}

impl RowTracker for Para {
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        self.decisions += 1;
        let p = eact.scale_probability(self.probability);
        if self.rng.gen_bool(p) {
            self.mitigations += 1;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        }
    }

    fn record_batch(
        &mut self,
        rows: &[RowId],
        eacts: &[Eact],
        now: Cycle,
        out: &mut Vec<MitigationRequest>,
    ) {
        debug_assert_eq!(rows.len(), eacts.len());
        // No run-length aggregation is possible here: every record consumes
        // one RNG draw, and collapsing a run would change the RNG stream (and
        // thus every subsequent decision). The batch form is exactly the
        // per-record loop, inlined.
        for (&row, &eact) in rows.iter().zip(eacts) {
            self.decisions += 1;
            let p = eact.scale_probability(self.probability);
            if self.rng.gen_bool(p) {
                self.mitigations += 1;
                out.push(MitigationRequest {
                    aggressor: row,
                    identified_at: now,
                });
            }
        }
    }

    // PARA inherits the default `headroom` of 0: each record can mitigate with
    // nonzero probability, so no span is provably mitigation-free and every
    // event must take the per-record path (preserving the RNG stream).

    fn kind(&self) -> TrackerKind {
        TrackerKind::Para
    }

    fn storage(&self) -> StorageEstimate {
        // PARA is stateless apart from its RNG (a few bytes of LFSR in hardware).
        StorageEstimate {
            entries_per_bank: 0,
            bits_per_entry: 0,
            extra_bits_per_bank: 32,
        }
    }

    fn configured_threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigation_rate_tracks_probability() {
        let mut para = Para::for_threshold(4_000);
        let n = 1_000_000u64;
        for i in 0..n {
            para.record(i as RowId % 128, Eact::ONE, i);
        }
        let rate = para.mitigations() as f64 / n as f64;
        let expected = 1.0 / 184.0;
        assert!(
            (rate - expected).abs() / expected < 0.05,
            "rate = {rate}, expected ≈ {expected}"
        );
    }

    #[test]
    fn eact_scaling_doubles_rate() {
        let mut base = Para::with_probability(4_000, 1.0 / 184.0, 1);
        let mut scaled = Para::with_probability(4_000, 1.0 / 184.0, 1);
        let n = 500_000u64;
        for i in 0..n {
            base.record(0, Eact::ONE, i);
            scaled.record(0, Eact::from_f64(2.0, 7), i);
        }
        let ratio = scaled.mitigations() as f64 / base.mitigations() as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn saturated_probability_always_mitigates() {
        let mut para = Para::with_probability(4_000, 1.0 / 184.0, 7);
        // EACT of 200 pushes p×EACT above 1.0, which must clamp to certainty.
        let eact = Eact::from_f64(200.0, 7);
        for i in 0..100u64 {
            assert!(para.record(3, eact, i).is_some());
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = Para::with_probability(4_000, 0.01, 99);
        let mut b = Para::with_probability(4_000, 0.01, 99);
        for i in 0..10_000u64 {
            assert_eq!(
                a.record(5, Eact::ONE, i).is_some(),
                b.record(5, Eact::ONE, i).is_some()
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_is_rejected() {
        let _ = Para::with_probability(4_000, 0.0, 0);
    }
}
