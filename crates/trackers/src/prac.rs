//! PRAC: Per-Row Activation Counting (§VI-F extension).
//!
//! JEDEC's DDR5 update (JESD79-5C) adds Per-Row Activation Counting, where the DRAM
//! array stores an activation counter alongside every row and raises a back-off alert
//! when a counter crosses a threshold. The paper notes (§VI-F) that ImPress applies
//! directly: reserve 7 bits of the per-row counter for the fractional part of EACT.
//!
//! This module models PRAC as an idealized per-row counter table (the full array would
//! be one counter per row; the model stores only touched rows, in an open-addressed
//! [`FlatCounterTable`] so the per-activation path is a single linear probe instead of
//! a SipHash `HashMap` lookup).

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;

use crate::analysis::prac_counter_bits;
use crate::eact::{Eact, CANONICAL_FRAC_BITS};
use crate::flat::FlatCounterTable;
use crate::storage::StorageEstimate;
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

/// The PRAC tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Prac {
    threshold: u64,
    /// Mitigation is triggered when a counter reaches this many activations
    /// (a safety margin below the threshold, as PRAC's ABO protocol mitigates early).
    alert_threshold: u64,
    frac_bits: u32,
    rows_per_bank: u32,
    counters: FlatCounterTable,
    mitigations: u64,
}

impl Prac {
    /// Creates a PRAC tracker that alerts at half the Rowhammer threshold (so victims
    /// are refreshed with margin), with ImPress-P fractional counter bits.
    pub fn for_threshold(threshold: u64, frac_bits: u32, rows_per_bank: u32) -> Self {
        assert!(threshold >= 2, "threshold must be at least 2");
        assert!(
            frac_bits <= CANONICAL_FRAC_BITS,
            "at most {CANONICAL_FRAC_BITS} fractional bits are supported"
        );
        Self {
            threshold,
            alert_threshold: (threshold / 2).max(1),
            frac_bits,
            rows_per_bank,
            counters: FlatCounterTable::new(),
            mitigations: 0,
        }
    }

    /// Number of mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// The current activation count of `row` (whole activations).
    pub fn count(&self, row: RowId) -> u64 {
        self.counters.get(row).activations()
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.frac_bits;
            let truncated = (eact.raw() >> drop) << drop;
            Eact::from_raw(truncated.max(Eact::ONE.raw()))
        }
    }
}

impl RowTracker for Prac {
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        let counter = self.counters.add(row, eact);
        if counter.reached(self.alert_threshold) {
            self.counters.reset(row);
            self.mitigations += 1;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        }
    }

    fn record_batch(
        &mut self,
        rows: &[RowId],
        eacts: &[Eact],
        now: Cycle,
        out: &mut Vec<MitigationRequest>,
    ) {
        debug_assert_eq!(rows.len(), eacts.len());
        let alert = self.alert_threshold;
        let mut i = 0;
        while i < rows.len() {
            let row = rows[i];
            let mut j = i + 1;
            while j < rows.len() && rows[j] == row {
                j += 1;
            }
            // One probe per run: same-row adds never grow the table, so the
            // slot stays valid for the whole run.
            let slot = self.counters.slot_of(row);
            let start = self.counters.counter_raw_at(slot);
            let mut sum = 0u64;
            for &e in &eacts[i..j] {
                sum = sum.saturating_add(u64::from(self.quantize(e).raw()));
            }
            let end = start.saturating_add(sum);
            if (end >> CANONICAL_FRAC_BITS) < alert {
                // No crossing possible: one weighted add covers the run.
                self.counters.set_counter_raw_at(slot, end);
            } else {
                // Walk the run per event (plain u64 arithmetic on the resolved
                // slot): the counter resets to zero at each alert, so several
                // crossings can land inside one run.
                let mut raw = start;
                let mut any_reset = false;
                for &e in &eacts[i..j] {
                    raw = raw.saturating_add(u64::from(self.quantize(e).raw()));
                    if (raw >> CANONICAL_FRAC_BITS) >= alert {
                        raw = 0;
                        any_reset = true;
                        self.mitigations += 1;
                        out.push(MitigationRequest {
                            aggressor: row,
                            identified_at: now,
                        });
                    }
                }
                self.counters.set_counter_raw_at(slot, raw);
                if any_reset {
                    self.counters.recompute_max();
                }
            }
            i = j;
        }
    }

    fn headroom(&self) -> u64 {
        let alert_raw = self
            .alert_threshold
            .saturating_mul(u64::from(Eact::ONE.raw()));
        // Counters are independent (no spillover), so absorbing total weight W
        // raises the maximum by at most W: W <= alert_raw - 1 - max is safe.
        alert_raw
            .saturating_sub(1)
            .saturating_sub(self.counters.max_raw())
    }

    fn on_refresh_window(&mut self, _now: Cycle) {
        self.counters.clear();
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Prac
    }

    fn storage(&self) -> StorageEstimate {
        // One counter per row, stored in the DRAM array itself (not SRAM).
        StorageEstimate::per_entry(
            u64::from(self.rows_per_bank),
            prac_counter_bits(self.threshold) + self.frac_bits,
        )
    }

    fn configured_threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alerts_at_half_threshold() {
        let mut prac = Prac::for_threshold(4_000, 0, 1 << 16);
        let mut first_alert = None;
        for i in 0..3_000u64 {
            if prac.record(9, Eact::ONE, i * 128).is_some() {
                first_alert = Some(i + 1);
                break;
            }
        }
        assert_eq!(first_alert, Some(2_000));
    }

    #[test]
    fn independent_rows_have_independent_counters() {
        let mut prac = Prac::for_threshold(4_000, 0, 1 << 16);
        for i in 0..1_000u64 {
            prac.record(1, Eact::ONE, i);
            prac.record(2, Eact::ONE, i);
        }
        assert_eq!(prac.count(1), 1_000);
        assert_eq!(prac.count(2), 1_000);
        assert_eq!(prac.mitigations(), 0);
    }

    #[test]
    fn fractional_eact_counts_precisely() {
        let mut prac = Prac::for_threshold(100, 7, 1 << 16);
        // 1.25 EACT per record: alert threshold of 50 is reached after 40 records.
        let mut alerts = 0;
        for i in 0..40u64 {
            if prac.record(3, Eact::from_f64(1.25, 7), i).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 1);
    }

    #[test]
    fn refresh_window_clears_counters() {
        let mut prac = Prac::for_threshold(4_000, 0, 1 << 16);
        prac.record(5, Eact::ONE, 0);
        prac.on_refresh_window(100);
        assert_eq!(prac.count(5), 0);
    }

    #[test]
    fn storage_counts_every_row() {
        let prac = Prac::for_threshold(4_000, 7, 1 << 16);
        // 12-bit counter + 7 fractional bits per row, stored in-array.
        assert_eq!(prac.storage().bits_per_entry, 19);
        assert_eq!(prac.storage().entries_per_bank, 1 << 16);
    }
}
