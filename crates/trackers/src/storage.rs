//! Storage-overhead accounting for trackers.
//!
//! The paper compares defenses partly by SRAM cost (e.g. Graphene needs 448 entries per
//! bank = 115 KB per channel for TRH = 4K, doubling under ExPress/ImPress-N but growing
//! by only 25% under ImPress-P). [`StorageEstimate`] captures the per-bank entry count
//! and entry width so those numbers can be reproduced.

use std::fmt;

/// Storage required by one bank's tracker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StorageEstimate {
    /// Number of tracking entries per bank (1 for single-register designs).
    pub entries_per_bank: u64,
    /// Width of each entry in bits (row address + counter + any metadata).
    pub bits_per_entry: u32,
    /// Additional per-bank state in bits that is not per-entry (timers, registers).
    pub extra_bits_per_bank: u32,
}

impl StorageEstimate {
    /// Creates an estimate from entries and entry width, with no extra state.
    pub fn per_entry(entries_per_bank: u64, bits_per_entry: u32) -> Self {
        Self {
            entries_per_bank,
            bits_per_entry,
            extra_bits_per_bank: 0,
        }
    }

    /// Total bits per bank.
    pub fn bits_per_bank(&self) -> u64 {
        self.entries_per_bank * u64::from(self.bits_per_entry) + u64::from(self.extra_bits_per_bank)
    }

    /// Total bytes per bank (rounded up).
    pub fn bytes_per_bank(&self) -> u64 {
        self.bits_per_bank().div_ceil(8)
    }

    /// Total kibibytes per channel given the number of banks per channel
    /// (the paper reports KB per channel with 64 banks/channel).
    pub fn kib_per_channel(&self, banks_per_channel: usize) -> f64 {
        (self.bits_per_bank() * banks_per_channel as u64) as f64 / 8.0 / 1024.0
    }

    /// Ratio of this storage cost to a baseline estimate (total bits per bank).
    pub fn relative_to(&self, baseline: &StorageEstimate) -> f64 {
        self.bits_per_bank() as f64 / baseline.bits_per_bank() as f64
    }
}

impl fmt::Display for StorageEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries × {} bits (+{} bits) = {} B/bank",
            self.entries_per_bank,
            self.bits_per_entry,
            self.extra_bits_per_bank,
            self.bytes_per_bank()
        )
    }
}

/// Number of bits needed to address a row within a bank (the paper's configuration has
/// 64K–128K rows per bank; entries store a row address of this width).
pub const ROW_ADDRESS_BITS: u32 = 17;

/// Width of a Graphene/Mithril activation counter able to count up to the internal
/// threshold for typical thresholds (≤ 16K), without ImPress-P fractional extension.
pub const COUNTER_BITS: u32 = 15;

/// Per-entry pointer bits a hardware realization of the stream-summary eviction
/// engine ([`crate::summary::CountSummary`]) would add: three links of
/// `ceil(log2(entries))` bits each (bucket id + two member-list neighbours) at
/// the paper's table sizes (Graphene 448, Mithril 383 ⇒ 9-bit ids).
///
/// The reproduction does **not** charge this to [`crate::tracker::RowTracker::storage`]:
/// the paper's hardware designs answer the min/max queries with a parallel CAM
/// comparison rather than a linked structure, so the summary is a
/// simulator-side acceleration of the same observable algorithm and the SRAM
/// accounting (entries × entry width) is unchanged. The constant exists so the
/// storage analysis can quote what an SRAM-pointer realization *would* cost
/// (`3 × 9 = 27` bits/entry, ~84% of a 32-bit base entry — which is exactly why
/// the hardware uses a CAM instead).
pub const SUMMARY_LINK_BITS: u32 = 27;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_up() {
        let s = StorageEstimate::per_entry(1, 10);
        assert_eq!(s.bytes_per_bank(), 2);
    }

    #[test]
    fn graphene_like_storage_is_about_115kb_per_channel() {
        // 448 entries × 32 bits × 64 banks / 8 / 1024 = 112 KiB ≈ the paper's "115 KB".
        let s = StorageEstimate::per_entry(448, ROW_ADDRESS_BITS + COUNTER_BITS);
        let kib = s.kib_per_channel(64);
        assert!((kib - 112.0).abs() < 1.0, "kib = {kib}");
    }

    #[test]
    fn relative_storage_ratio() {
        let base = StorageEstimate::per_entry(448, 32);
        let impress_p = StorageEstimate::per_entry(448, 32 + 7);
        let ratio = impress_p.relative_to(&base);
        assert!((ratio - 1.22).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn summary_pointer_realization_is_quoted_not_charged() {
        // An SRAM-pointer stream-summary would nearly double Graphene's entry
        // width — the number the docs quote when explaining why hardware uses a
        // CAM and why `storage()` stays at entries × (row + counter) bits.
        let base = StorageEstimate::per_entry(448, ROW_ADDRESS_BITS + COUNTER_BITS);
        let with_links =
            StorageEstimate::per_entry(448, ROW_ADDRESS_BITS + COUNTER_BITS + SUMMARY_LINK_BITS);
        let ratio = with_links.relative_to(&base);
        assert!(ratio > 1.8 && ratio < 1.9, "ratio = {ratio}");
    }

    #[test]
    fn display_mentions_entries() {
        let s = StorageEstimate::per_entry(4, 32);
        assert!(s.to_string().contains("4 entries"));
    }
}
