//! O(1) min/max-count maintenance for Misra-Gries tables: the stream-summary
//! eviction engine.
//!
//! Graphene and Mithril need three ordered queries over their counter tables that
//! the seed answered with linear scans on every *miss*:
//!
//! * Graphene's eviction: "is there an entry whose count does not exceed the
//!   spillover count?" — equivalent to `min ≤ spillover`;
//! * Mithril's eviction: "which entry has the minimum count, and is it at or below
//!   the spillover count?";
//! * Mithril's RFM mitigation: "which entry has the maximum count?".
//!
//! The row→slot index (PR 3) made the *match* path O(1) but left every miss paying
//! an O(entries) scan, a ~100× throughput cliff on eviction-heavy churn streams.
//! [`CountSummary`] removes the scan: it is the classic *stream-summary* structure
//! of Metwally et al.'s Space-Saving algorithm — table slots threaded onto
//! doubly-linked lists, one list per distinct count value ("bucket"), with the
//! buckets themselves on a doubly-linked list ordered by count. The minimum lives
//! at the head of the first bucket and the maximum at the head of the last, so
//! insert / evict-min / mitigate-max / roll-back-to-spillover are all pointer
//! splices:
//!
//! * no allocation in steady state — bucket nodes come from a preallocated pool
//!   sized at one node per table slot (a bucket is never empty, so the number of
//!   live buckets cannot exceed the number of attached slots);
//! * unit-weight increments (plain Rowhammer accounting, `frac_bits = 0`) move a
//!   slot to an adjacent bucket, the textbook O(1) case;
//! * fractional EACT increments walk the bucket list from the slot's current
//!   bucket toward the insertion point, so the cost is the number of *distinct
//!   counts* crossed — in the simulated workloads and churn streams counts
//!   cluster tightly and the walk is O(1) amortized, and a single-occupant bucket
//!   whose neighbours are not crossed is re-counted in place without any splice.
//!
//! Selecting among *tied* minima (or maxima) is where the engine deliberately
//! diverges from the seed's scan: the scan broke ties by table order, the summary
//! by bucket-list order. The Misra-Gries/Space-Saving guarantees do not depend on
//! the tie-break, so the trackers enforce an **observational-equivalence
//! contract** instead of bit-identical selection — see the module docs of
//! [`crate::graphene`]/[`crate::mithril`] and the `summary_equivalence`
//! integration suite.

use std::fmt;

/// Sentinel for "no slot / no bucket".
const NIL: u32 = u32::MAX;

/// Which eviction implementation a Graphene/Mithril instance uses.
///
/// * [`EvictionEngine::Scan`] — the seed's linear scan over the table on every
///   miss (and, for Mithril, on every RFM). Bit-identical to the original
///   algorithms; kept for A/B comparison in tests and `perf_report`.
/// * [`EvictionEngine::Summary`] — the bucketed [`CountSummary`] structure;
///   observationally equivalent (same mitigation multiset whenever the victim
///   choice is unambiguous, same Misra-Gries error bound always) and O(1) on the
///   miss path.
///
/// The process-wide default is read from the `IMPRESS_EVICTION` environment
/// variable (`scan` or `summary`, case-insensitive; unset or unrecognized values
/// select `Summary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionEngine {
    /// Linear-scan eviction (the seed algorithm, bit-identical).
    Scan,
    /// Bucketed stream-summary eviction (O(1), observationally equivalent).
    #[default]
    Summary,
}

/// Environment variable selecting the default [`EvictionEngine`].
pub const EVICTION_ENV: &str = "IMPRESS_EVICTION";

impl EvictionEngine {
    /// The engine selected by the `IMPRESS_EVICTION` environment variable
    /// (`scan`/`summary`, case-insensitive). Unset or unrecognized values select
    /// [`EvictionEngine::Summary`], mirroring how `IMPRESS_THREADS` treats
    /// unparsable input.
    pub fn from_env() -> Self {
        match std::env::var(EVICTION_ENV) {
            Ok(v) if v.trim().eq_ignore_ascii_case("scan") => EvictionEngine::Scan,
            _ => EvictionEngine::Summary,
        }
    }

    /// Short name used in reports (`"scan"` / `"summary"`).
    pub fn label(self) -> &'static str {
        match self {
            EvictionEngine::Scan => "scan",
            EvictionEngine::Summary => "summary",
        }
    }
}

impl fmt::Display for EvictionEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the per-tracker summary-engine scaffolding: the [`CountSummary`] and
/// the invalid-slot free list (claimed before any eviction is considered — the
/// explicit invalid-before-eviction invariant). Under the scan engine both are
/// empty and never maintained.
///
/// Shared by Graphene and Mithril so the free-slot pop order — load-bearing
/// for the lockstep equivalence of invalid claims, see
/// [`restock_free_slots`] — is defined in exactly one place.
pub fn engine_scaffolding(entries: usize, engine: EvictionEngine) -> (CountSummary, Vec<u32>) {
    match engine {
        EvictionEngine::Scan => (CountSummary::new(0), Vec::new()),
        EvictionEngine::Summary => {
            let mut free_slots = Vec::with_capacity(entries);
            restock_free_slots(&mut free_slots, entries);
            (CountSummary::new(entries), free_slots)
        }
    }
}

/// Refills the invalid-slot free list with every slot (a refresh-window reset).
///
/// Slots are stacked in reverse so pops claim slot 0 first — the same order the
/// scan engine's first-invalid search produces. Slot identity is unobservable,
/// but keeping the orders aligned means an invalid claim can never be the point
/// where the engines' table layouts diverge, which makes divergences in the
/// equivalence suites attributable to tied-victim choices alone.
pub fn restock_free_slots(free_slots: &mut Vec<u32>, entries: usize) {
    free_slots.clear();
    free_slots.extend((0..entries as u32).rev());
}

/// One bucket: a non-empty set of slots sharing the same count, on the ordered
/// bucket list.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// The count shared by every slot in this bucket.
    count: u64,
    /// First slot of this bucket's doubly-linked member list.
    head: u32,
    /// Previous bucket on the ordered list (strictly smaller count) or `NIL`.
    prev: u32,
    /// Next bucket on the ordered list (strictly larger count) or `NIL`.
    next: u32,
}

/// Per-slot membership links, kept in one node so a slot touch costs one cache
/// line instead of three parallel-array loads (the record hot path visits these
/// on every activation).
#[derive(Debug, Clone, Copy)]
struct SlotLink {
    /// Bucket id (`NIL` when the slot is not attached).
    bucket: u32,
    /// Previous member in the bucket list (`NIL` at the head).
    prev: u32,
    /// Next member in the bucket list (`NIL` at the tail).
    next: u32,
}

const DETACHED: SlotLink = SlotLink {
    bucket: NIL,
    prev: NIL,
    next: NIL,
};

/// A stream-summary over a fixed set of table slots: every *attached* slot has a
/// count, and the structure answers min/max queries and applies count changes in
/// O(1) pointer splices (plus a bucket-list walk bounded by the number of distinct
/// counts crossed).
///
/// The summary stores only slot ids and counts; the owning tracker keeps the
/// authoritative `(row, counter)` table and mirrors every change into the summary.
#[derive(Debug, Clone)]
pub struct CountSummary {
    /// Per-slot membership links (`bucket == NIL` when the slot is detached).
    slots: Vec<SlotLink>,
    /// Bucket node pool (capacity = number of slots; a bucket is never empty).
    buckets: Vec<Bucket>,
    /// Head of the intrusive free-bucket chain (threaded through `Bucket::next`).
    free_head: u32,
    /// Bucket holding the minimum count, or `NIL` when empty.
    first: u32,
    /// Bucket holding the maximum count, or `NIL` when empty.
    last: u32,
    /// Number of attached slots.
    len: usize,
}

impl CountSummary {
    /// Builds an empty summary able to track `slots` table slots.
    pub fn new(slots: usize) -> Self {
        assert!(
            slots < NIL as usize,
            "slot count must fit the u32 id space with a sentinel"
        );
        let mut summary = Self {
            slots: vec![DETACHED; slots],
            buckets: vec![
                Bucket {
                    count: 0,
                    head: NIL,
                    prev: NIL,
                    next: NIL,
                };
                slots
            ],
            free_head: NIL,
            first: NIL,
            last: NIL,
            len: 0,
        };
        summary.rebuild_free_chain();
        summary
    }

    /// Threads every bucket node onto the free chain (ascending ids).
    fn rebuild_free_chain(&mut self) {
        self.free_head = NIL;
        for b in (0..self.buckets.len() as u32).rev() {
            self.buckets[b as usize].next = self.free_head;
            self.free_head = b;
        }
    }

    /// Pops a bucket node off the free chain.
    #[inline]
    fn alloc_bucket(&mut self) -> u32 {
        let b = self.free_head;
        debug_assert_ne!(b, NIL, "bucket pool sized at one node per slot");
        self.free_head = self.buckets[b as usize].next;
        b
    }

    /// Pushes a bucket node back onto the free chain.
    #[inline]
    fn free_bucket(&mut self, b: u32) {
        self.buckets[b as usize].next = self.free_head;
        self.free_head = b;
    }

    /// Number of attached slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is currently attached.
    pub fn contains(&self, slot: usize) -> bool {
        self.slots[slot].bucket != NIL
    }

    /// The count currently recorded for an attached `slot`.
    pub fn count_of(&self, slot: usize) -> Option<u64> {
        let b = self.slots[slot].bucket;
        (b != NIL).then(|| self.buckets[b as usize].count)
    }

    /// A slot holding the minimum count, with that count. O(1).
    ///
    /// Among tied minima the most recently attached slot is returned (bucket
    /// member lists are LIFO) — a deterministic tie-break, but a different one
    /// from the scan engine's table order.
    #[inline]
    pub fn min(&self) -> Option<(usize, u64)> {
        (self.first != NIL).then(|| {
            let b = &self.buckets[self.first as usize];
            (b.head as usize, b.count)
        })
    }

    /// A slot holding the maximum count, with that count. O(1).
    #[inline]
    pub fn max(&self) -> Option<(usize, u64)> {
        (self.last != NIL).then(|| {
            let b = &self.buckets[self.last as usize];
            (b.head as usize, b.count)
        })
    }

    /// Attaches `slot` with `count`. The slot must not already be attached.
    #[inline]
    pub fn attach(&mut self, slot: usize, count: u64) {
        debug_assert_eq!(self.slots[slot].bucket, NIL, "slot {slot} attached twice");
        // New entries usually land near one end of the count range (evict-and-
        // reinsert at the spillover count near the bottom, RFM roll-backs near
        // wherever spillover sits): start from whichever end is on the right side.
        let hint = if self.last != NIL && self.buckets[self.last as usize].count <= count {
            self.last
        } else {
            NIL
        };
        let anchor = self.anchor(hint, count);
        self.link_slot(anchor, slot, count);
        self.len += 1;
    }

    /// Detaches `slot` (which must be attached). Returns a live-bucket hint for a
    /// subsequent re-attach near the old position: the bucket with the largest
    /// count ≤ the slot's old count, or `NIL` if none remains.
    #[inline]
    pub fn detach(&mut self, slot: usize) -> u32 {
        let b = self.slots[slot].bucket;
        debug_assert_ne!(b, NIL, "slot {slot} detached while not attached");
        let hint = self.unlink_slot(b, slot);
        self.len -= 1;
        hint
    }

    /// Changes an attached slot's count, preserving the ordering invariant.
    ///
    /// Handles increases (activation recorded) and decreases (mitigation rolled
    /// the counter back to the spillover value) alike; the bucket-list walk starts
    /// at the slot's current bucket, so the cost is the number of distinct counts
    /// crossed. A slot alone in its bucket whose neighbours are not crossed is
    /// re-counted in place with no splice at all.
    #[inline]
    pub fn set_count(&mut self, slot: usize, count: u64) {
        let b = self.slots[slot].bucket;
        debug_assert_ne!(b, NIL, "set_count on unattached slot {slot}");
        let bucket = self.buckets[b as usize];
        if bucket.count == count {
            return;
        }
        // Fast path: the slot is its bucket's only member and the new count still
        // fits strictly between the neighbouring buckets.
        if bucket.head == slot as u32
            && self.slots[slot].next == NIL
            && (bucket.prev == NIL || self.buckets[bucket.prev as usize].count < count)
            && (bucket.next == NIL || self.buckets[bucket.next as usize].count > count)
        {
            self.buckets[b as usize].count = count;
            return;
        }
        let mut hint = self.unlink_slot(b, slot);
        // End jumps: a new count at or above the current maximum (the common
        // evict-and-reinsert shape once counts band together) or below the
        // current minimum (deep roll-backs) resolves in O(1) from the ends
        // instead of walking the band.
        if self.last != NIL && self.buckets[self.last as usize].count <= count {
            hint = self.last;
        } else if self.first == NIL || self.buckets[self.first as usize].count > count {
            hint = NIL;
        }
        let anchor = self.anchor(hint, count);
        self.link_slot(anchor, slot, count);
    }

    /// Fused evict-and-reinsert for the churn hot path: if the current minimum
    /// count is at most `limit` (the spillover count — the Misra-Gries eviction
    /// condition), moves the minimum slot (the head of the first bucket) to
    /// `count` and returns it; otherwise leaves the structure untouched and
    /// returns `None`. Equivalent to checking `min()` and then
    /// `detach(min); attach(min, count)`, but the head unlink needs no
    /// predecessor handling and the slot's links are written exactly once, so a
    /// churn eviction costs a handful of stores instead of two generic splices.
    ///
    /// `count` must be ≥ the current minimum (it is: evictions reinsert at the
    /// spillover count plus the new row's weight, and `limit` is the spillover).
    #[inline]
    pub fn evict_min_if_at_most(&mut self, limit: u64, count: u64) -> Option<usize> {
        let b = self.first;
        if b == NIL {
            return None;
        }
        let bucket = self.buckets[b as usize];
        if bucket.count > limit {
            return None;
        }
        debug_assert!(bucket.count <= count, "reinsert below the minimum");
        let slot = bucket.head as usize;
        // Unlink the head of the first bucket (no predecessor by definition).
        let next_member = self.slots[slot].next;
        let hint;
        if next_member != NIL {
            self.slots[next_member as usize].prev = NIL;
            self.buckets[b as usize].head = next_member;
            hint = b;
        } else {
            // The minimum bucket dies: its successor becomes the new first.
            let bnext = bucket.next;
            self.first = bnext;
            if bnext != NIL {
                self.buckets[bnext as usize].prev = NIL;
            } else {
                self.last = NIL;
            }
            self.free_bucket(b);
            hint = NIL;
        }
        // Re-link at `count`; the common churn shape lands at or above the
        // current maximum, which the end-jump resolves in O(1).
        let anchor = if self.last != NIL && self.buckets[self.last as usize].count <= count {
            self.anchor(self.last, count)
        } else {
            self.anchor(hint, count)
        };
        self.link_slot(anchor, slot, count);
        Some(slot)
    }

    /// Detaches every slot. Capacity is retained; never allocates.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        self.slots.fill(DETACHED);
        self.first = NIL;
        self.last = NIL;
        self.len = 0;
        self.rebuild_free_chain();
    }

    /// The bucket with the largest count ≤ `count`, or `NIL` if every live bucket
    /// has a larger count (insertion goes before `first`).
    ///
    /// `hint` is a live bucket id to start from (or `NIL` to start at `first`);
    /// the walk proceeds toward the answer, so the cost is the bucket-list
    /// distance between hint and answer.
    #[inline]
    fn anchor(&self, hint: u32, count: u64) -> u32 {
        let mut cur = if hint == NIL { self.first } else { hint };
        if cur == NIL {
            return NIL;
        }
        if self.buckets[cur as usize].count <= count {
            // Walk forward while the next bucket still fits under `count`.
            loop {
                let next = self.buckets[cur as usize].next;
                if next == NIL || self.buckets[next as usize].count > count {
                    return cur;
                }
                cur = next;
            }
        } else {
            // Walk backward to the first bucket that fits under `count`.
            loop {
                let prev = self.buckets[cur as usize].prev;
                if prev == NIL {
                    return NIL;
                }
                if self.buckets[prev as usize].count <= count {
                    return prev;
                }
                cur = prev;
            }
        }
    }

    /// Links `slot` with `count` after bucket `anchor` (`NIL` = before `first`),
    /// joining the anchor bucket if its count matches, else splicing in a fresh
    /// bucket node.
    #[inline]
    fn link_slot(&mut self, anchor: u32, slot: usize, count: u64) {
        let target = if anchor != NIL && self.buckets[anchor as usize].count == count {
            anchor
        } else {
            let b = self.alloc_bucket();
            let next = if anchor == NIL {
                self.first
            } else {
                self.buckets[anchor as usize].next
            };
            self.buckets[b as usize] = Bucket {
                count,
                head: NIL,
                prev: anchor,
                next,
            };
            if anchor == NIL {
                self.first = b;
            } else {
                self.buckets[anchor as usize].next = b;
            }
            if next == NIL {
                self.last = b;
            } else {
                self.buckets[next as usize].prev = b;
            }
            b
        };
        // Push the slot at the head of the bucket's member list (LIFO tie-break).
        let head = self.buckets[target as usize].head;
        self.slots[slot] = SlotLink {
            bucket: target,
            prev: NIL,
            next: head,
        };
        if head != NIL {
            self.slots[head as usize].prev = slot as u32;
        }
        self.buckets[target as usize].head = slot as u32;
    }

    /// Unlinks `slot` from bucket `b`, freeing the bucket if it empties. Returns
    /// the hint described in [`CountSummary::detach`].
    #[inline]
    fn unlink_slot(&mut self, b: u32, slot: usize) -> u32 {
        let SlotLink { prev, next, .. } = self.slots[slot];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.buckets[b as usize].head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        }
        self.slots[slot] = DETACHED;
        if self.buckets[b as usize].head != NIL {
            return b;
        }
        // Bucket emptied: splice it out of the ordered list and recycle the node.
        let bprev = self.buckets[b as usize].prev;
        let bnext = self.buckets[b as usize].next;
        if bprev != NIL {
            self.buckets[bprev as usize].next = bnext;
        } else {
            self.first = bnext;
        }
        if bnext != NIL {
            self.buckets[bnext as usize].prev = bprev;
        } else {
            self.last = bprev;
        }
        self.free_bucket(b);
        bprev
    }

    /// Full structural validation: bucket counts strictly increasing along the
    /// list, all links mutually consistent, no empty live bucket, every attached
    /// slot reachable exactly once, and the node pool conserved.
    ///
    /// O(slots); intended for tests and debug assertions, not hot paths.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn validate(&self) {
        let mut seen_slots = vec![false; self.slots.len()];
        let mut seen_buckets = vec![false; self.buckets.len()];
        let mut total = 0usize;
        let mut prev_bucket = NIL;
        let mut prev_count: Option<u64> = None;
        let mut b = self.first;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            assert!(
                !std::mem::replace(&mut seen_buckets[b as usize], true),
                "bucket {b} appears twice on the ordered list"
            );
            assert_eq!(
                bucket.prev, prev_bucket,
                "bucket {b} has a stale prev pointer"
            );
            if let Some(pc) = prev_count {
                assert!(
                    bucket.count > pc,
                    "bucket counts not strictly increasing ({pc} -> {})",
                    bucket.count
                );
            }
            assert_ne!(bucket.head, NIL, "live bucket {b} is empty");
            let mut member = bucket.head;
            let mut prev_member = NIL;
            while member != NIL {
                let s = member as usize;
                assert!(
                    !std::mem::replace(&mut seen_slots[s], true),
                    "slot {s} appears twice"
                );
                assert_eq!(
                    self.slots[s].bucket, b,
                    "slot {s} points at the wrong bucket"
                );
                assert_eq!(self.slots[s].prev, prev_member, "slot {s} has a stale prev");
                total += 1;
                prev_member = member;
                member = self.slots[s].next;
            }
            prev_count = Some(bucket.count);
            prev_bucket = b;
            b = bucket.next;
        }
        assert_eq!(self.last, prev_bucket, "stale last-bucket pointer");
        assert_eq!(total, self.len, "len does not match attached slots");
        for (s, link) in self.slots.iter().enumerate() {
            assert_eq!(
                link.bucket != NIL,
                seen_slots[s],
                "slot {s} attachment flag inconsistent with list membership"
            );
        }
        let live = seen_buckets.iter().filter(|&&x| x).count();
        let mut free = 0usize;
        let mut f = self.free_head;
        while f != NIL {
            assert!(
                !seen_buckets[f as usize],
                "bucket {f} is both free and on the ordered list"
            );
            assert!(
                free <= self.buckets.len(),
                "free chain longer than the pool (cycle?)"
            );
            free += 1;
            f = self.buckets[f as usize].next;
        }
        assert_eq!(
            live + free,
            self.buckets.len(),
            "bucket node pool not conserved"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_summary() {
        // Unset (the usual test environment) or unrecognized values select the
        // summary engine; only an explicit "scan" opts out (CI runs suites
        // under both values, so read the variable rather than assuming unset).
        let expected = match std::env::var(EVICTION_ENV) {
            Ok(v) if v.trim().eq_ignore_ascii_case("scan") => EvictionEngine::Scan,
            _ => EvictionEngine::Summary,
        };
        assert_eq!(EvictionEngine::from_env(), expected);
        assert_eq!(EvictionEngine::default(), EvictionEngine::Summary);
        assert_eq!(EvictionEngine::Summary.label(), "summary");
        assert_eq!(EvictionEngine::Scan.to_string(), "scan");
    }

    #[test]
    fn attach_min_max_detach_roundtrip() {
        let mut s = CountSummary::new(8);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        s.attach(3, 50);
        s.attach(1, 10);
        s.attach(5, 90);
        s.validate();
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some((1, 10)));
        assert_eq!(s.max(), Some((5, 90)));
        assert_eq!(s.count_of(3), Some(50));
        s.detach(1);
        s.validate();
        assert_eq!(s.min(), Some((3, 50)));
        s.detach(5);
        s.validate();
        assert_eq!(s.max(), Some((3, 50)));
        s.detach(3);
        assert!(s.is_empty());
        s.validate();
    }

    #[test]
    fn tied_counts_share_a_bucket() {
        let mut s = CountSummary::new(4);
        s.attach(0, 7);
        s.attach(1, 7);
        s.attach(2, 7);
        s.validate();
        // LIFO within the bucket: the most recent attach is at the head.
        assert_eq!(s.min(), Some((2, 7)));
        assert_eq!(s.max(), Some((2, 7)));
        s.detach(2);
        s.validate();
        assert_eq!(s.min(), Some((1, 7)));
    }

    #[test]
    fn set_count_moves_across_buckets_both_directions() {
        let mut s = CountSummary::new(4);
        s.attach(0, 10);
        s.attach(1, 20);
        s.attach(2, 30);
        s.set_count(0, 25); // up, between existing buckets
        s.validate();
        assert_eq!(s.min(), Some((1, 20)));
        s.set_count(2, 5); // down, below everything
        s.validate();
        assert_eq!(s.min(), Some((2, 5)));
        assert_eq!(s.max(), Some((0, 25)));
        s.set_count(2, 25); // join an existing bucket
        s.validate();
        assert_eq!(s.count_of(2), Some(25));
        assert_eq!(s.min(), Some((1, 20)));
    }

    #[test]
    fn in_place_recount_fast_path_keeps_ordering() {
        let mut s = CountSummary::new(4);
        s.attach(0, 10);
        s.attach(1, 20);
        s.attach(2, 40);
        // Slot 1 is alone in its bucket; 25 still fits between 10 and 40.
        s.set_count(1, 25);
        s.validate();
        assert_eq!(s.count_of(1), Some(25));
        assert_eq!(s.min(), Some((0, 10)));
        assert_eq!(s.max(), Some((2, 40)));
    }

    #[test]
    fn unit_increment_walks_to_adjacent_bucket() {
        let mut s = CountSummary::new(8);
        for slot in 0..8usize {
            s.attach(slot, slot as u64);
        }
        // Increment the min by one: it joins the next bucket (at its LIFO head).
        s.set_count(0, 1);
        s.validate();
        assert_eq!(s.min(), Some((0, 1)));
        assert_eq!(s.count_of(0), Some(1));
        s.detach(0);
        assert_eq!(s.min(), Some((1, 1)));
    }

    #[test]
    fn clear_recycles_everything() {
        let mut s = CountSummary::new(6);
        for slot in 0..6usize {
            s.attach(slot, (slot as u64) * 3);
        }
        s.clear();
        s.validate();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        for slot in 0..6usize {
            assert!(!s.contains(slot));
            s.attach(slot, 100 - slot as u64);
        }
        s.validate();
        assert_eq!(s.min(), Some((5, 95)));
        assert_eq!(s.max(), Some((0, 100)));
    }

    #[test]
    fn evict_and_reinsert_churn_never_allocates_buckets_beyond_pool() {
        // The Space-Saving churn shape: evict the min, re-attach at a low count.
        let mut s = CountSummary::new(16);
        for slot in 0..16usize {
            s.attach(slot, slot as u64 * 2);
        }
        for round in 0..10_000u64 {
            let (slot, count) = s.min().unwrap();
            s.detach(slot);
            s.attach(slot, count + 3);
            if round % 512 == 0 {
                s.validate();
            }
        }
        s.validate();
        assert_eq!(s.len(), 16);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "attached twice")]
    fn double_attach_is_rejected_in_debug() {
        let mut s = CountSummary::new(2);
        s.attach(0, 1);
        s.attach(0, 2);
    }
}
