//! The [`RowTracker`] trait shared by all Rowhammer tracking mechanisms.

use std::fmt;

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;

use crate::eact::Eact;
use crate::storage::StorageEstimate;

/// Identifies which tracking mechanism a [`RowTracker`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerKind {
    /// Graphene: Misra-Gries counters at the memory controller.
    Graphene,
    /// PARA: per-activation probabilistic sampling at the memory controller.
    Para,
    /// Mithril: in-DRAM counter summary mitigating under RFM.
    Mithril,
    /// MINT: in-DRAM single-entry probabilistic slot selection mitigating under RFM.
    Mint,
    /// PRAC: per-row activation counters stored in the DRAM array (§VI-F extension).
    Prac,
}

impl TrackerKind {
    /// Returns `true` for trackers that perform their mitigation inside the DRAM
    /// device under RFM (and therefore cannot see controller-side information such
    /// as a tMRO limit).
    pub fn is_in_dram(self) -> bool {
        matches!(
            self,
            TrackerKind::Mithril | TrackerKind::Mint | TrackerKind::Prac
        )
    }
}

impl fmt::Display for TrackerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrackerKind::Graphene => "Graphene",
            TrackerKind::Para => "PARA",
            TrackerKind::Mithril => "Mithril",
            TrackerKind::Mint => "MINT",
            TrackerKind::Prac => "PRAC",
        };
        f.write_str(s)
    }
}

/// A request from the tracker to mitigate an aggressor row by refreshing its victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MitigationRequest {
    /// The aggressor row whose neighbours must be refreshed.
    pub aggressor: RowId,
    /// Cycle at which the tracker identified the aggressor.
    pub identified_at: Cycle,
}

impl MitigationRequest {
    /// Victim rows to refresh for this aggressor, given a blast radius (the paper
    /// uses 2, i.e. four victim rows per mitigation).
    ///
    /// Victims beyond the edge of the bank (underflow/overflow) are skipped.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should use
    /// [`MitigationRequest::victims_into`] (reusable buffer) or
    /// [`MitigationRequest::victim_count`] (count only) instead.
    pub fn victims(&self, blast_radius: u32, rows_per_bank: u32) -> Vec<RowId> {
        let mut rows = Vec::with_capacity(2 * blast_radius as usize);
        self.victims_into(blast_radius, rows_per_bank, &mut rows);
        rows
    }

    /// Appends the victim rows to `out` instead of allocating (the caller clears and
    /// reuses the buffer across mitigations).
    pub fn victims_into(&self, blast_radius: u32, rows_per_bank: u32, out: &mut Vec<RowId>) {
        for d in 1..=blast_radius {
            if let Some(below) = self.aggressor.checked_sub(d) {
                out.push(below);
            }
            let above = self.aggressor + d;
            if above < rows_per_bank {
                out.push(above);
            }
        }
    }

    /// Number of victim rows [`MitigationRequest::victims`] would return, without
    /// materializing them — what the controller needs to charge mitigation time.
    pub fn victim_count(&self, blast_radius: u32, rows_per_bank: u32) -> u64 {
        let mut count = 0u64;
        for d in 1..=blast_radius {
            count += u64::from(self.aggressor.checked_sub(d).is_some());
            count += u64::from(self.aggressor + d < rows_per_bank);
        }
        count
    }
}

/// A Rowhammer tracking mechanism for one DRAM bank.
///
/// The tracker receives one [`Eact`]-weighted record per activation (or per row
/// closure under ImPress-P) and decides when to mitigate. Memory-controller trackers
/// (Graphene, PARA) return mitigation requests directly from [`RowTracker::record`];
/// in-DRAM trackers (Mithril, MINT) return them from [`RowTracker::on_rfm`], which the
/// controller calls every `RFMTH` activations.
///
/// `Send` is a supertrait because trackers live inside per-bank engines owned by
/// `ChannelShard`s, which the epoch-phased system loop executes on worker threads.
pub trait RowTracker: fmt::Debug + Send {
    /// Records that `row` accrued `eact` equivalent activations at cycle `now`.
    ///
    /// Returns a mitigation request if the tracker decides the row must be mitigated
    /// immediately (memory-controller trackers only).
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest>;

    /// Records a batch of activations in stream order, appending any mitigation
    /// requests to `out`.
    ///
    /// `rows` and `eacts` are parallel arrays; every event shares the single
    /// timestamp `now` (batch callers stage events and flush them together, so
    /// the per-event timestamps have already collapsed to one value by the time
    /// the tracker sees them). The contract is *semantic equivalence to the
    /// per-record loop*: the mitigation sequence appended to `out` and the
    /// tracker state afterwards must be identical to calling
    /// [`RowTracker::record`] once per event with the same `now`.
    ///
    /// Specialized implementations exploit the batch shape — run-length
    /// aggregating consecutive same-row events into one weighted counter
    /// update with a single row→slot probe — but may never reorder events
    /// across distinct rows (Misra-Gries claim/eviction decisions depend on
    /// the interleaving).
    fn record_batch(
        &mut self,
        rows: &[RowId],
        eacts: &[Eact],
        now: Cycle,
        out: &mut Vec<MitigationRequest>,
    ) {
        for (&row, &eact) in rows.iter().zip(eacts) {
            if let Some(m) = self.record(row, eact, now) {
                out.push(m);
            }
        }
    }

    /// A lower bound on the total raw [`Eact`] weight (Q7 fixed point, any row
    /// mix) this tracker can absorb through [`RowTracker::record`] with *zero*
    /// possibility of returning a mitigation request.
    ///
    /// Batch stagers use this to defer records: as long as the accumulated
    /// staged weight stays within the headroom reported when staging began, the
    /// deferred span is provably mitigation-free and can be flushed later as
    /// one [`RowTracker::record_batch`] call without perturbing mitigation
    /// emission order. Trackers whose `record` never mitigates directly
    /// (in-DRAM trackers that only act under RFM) return `u64::MAX`; trackers
    /// that consume randomness per record (PARA) must return 0 so every event
    /// takes the per-record path. The default is the conservative 0.
    fn headroom(&self) -> u64 {
        0
    }

    /// Called when an RFM command is executed; in-DRAM trackers mitigate here.
    ///
    /// The default implementation returns `None` (memory-controller trackers ignore RFM).
    fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        let _ = now;
        None
    }

    /// Whether [`RowTracker::on_rfm`] observes tracker state (in-DRAM trackers
    /// that mitigate under RFM).
    ///
    /// Batch stagers flush staged records before every RFM only when this is
    /// `true`; memory-controller trackers whose `on_rfm` is the default no-op
    /// keep their staged spans across RFM/REF commands, which is what lets
    /// staging amortize (REF fires every `tREFI`, far more often than refresh
    /// windows). Any tracker overriding [`RowTracker::on_rfm`] must override
    /// this to return `true`. The default matches the default `on_rfm`.
    fn mitigates_on_rfm(&self) -> bool {
        false
    }

    /// Called at the end of every refresh window (`tREFW`); trackers that reset
    /// periodically (Graphene) clear their state here.
    fn on_refresh_window(&mut self, now: Cycle) {
        let _ = now;
    }

    /// The tracking mechanism implemented by this tracker.
    fn kind(&self) -> TrackerKind;

    /// Per-bank storage required by this tracker configuration.
    fn storage(&self) -> StorageEstimate;

    /// The Rowhammer threshold this tracker instance was configured to tolerate.
    fn configured_threshold(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_cover_blast_radius() {
        let m = MitigationRequest {
            aggressor: 100,
            identified_at: 0,
        };
        let mut v = m.victims(2, 1 << 16);
        v.sort_unstable();
        assert_eq!(v, vec![98, 99, 101, 102]);
    }

    #[test]
    fn victims_clip_at_bank_edges() {
        let low = MitigationRequest {
            aggressor: 0,
            identified_at: 0,
        };
        assert_eq!(low.victims(2, 1 << 16), vec![1, 2]);
        let high = MitigationRequest {
            aggressor: (1 << 16) - 1,
            identified_at: 0,
        };
        let v = high.victims(2, 1 << 16);
        assert_eq!(v, vec![(1 << 16) - 2, (1 << 16) - 3]);
    }

    #[test]
    fn in_dram_classification() {
        assert!(!TrackerKind::Graphene.is_in_dram());
        assert!(!TrackerKind::Para.is_in_dram());
        assert!(TrackerKind::Mithril.is_in_dram());
        assert!(TrackerKind::Mint.is_in_dram());
        assert!(TrackerKind::Prac.is_in_dram());
    }

    #[test]
    fn kind_display() {
        assert_eq!(TrackerKind::Para.to_string(), "PARA");
        assert_eq!(TrackerKind::Mint.to_string(), "MINT");
    }
}
