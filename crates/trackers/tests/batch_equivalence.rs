//! Batched-record equivalence property tests.
//!
//! PR 8 adds [`RowTracker::record_batch`] kernels that run-length-aggregate
//! consecutive same-row activations and reuse one slot probe per run. The
//! contract is *exact* semantic equivalence: splitting any record stream into
//! arbitrary batches (each batch sharing one `now`, exactly as the staging
//! engine does) must produce the same mitigation sequence and leave the tracker
//! in the same observable state as recording every event individually.
//!
//! The suite pins that contract for all four specialized trackers — Graphene
//! and Mithril under *both* eviction engines, PRAC, and PARA (whose kernel must
//! preserve the RNG stream decision-for-decision) — plus the headroom
//! invariant the staging engine's safety argument rests on: absorbing total
//! weight of at most [`RowTracker::headroom`] can never mitigate.

use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{
    Eact, EvictionEngine, Graphene, Mithril, MitigationRequest, Para, Prac, RowTracker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type RowId = u32;

/// A run-heavy random record stream: bursts of the same row (what the batch
/// kernels aggregate) mixed with uniform single accesses (runs of length 1).
fn stream(seed: u64, len: usize, universe: u32) -> Vec<(RowId, Eact)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let row = rng.gen_range(0..universe.max(1));
        let run = if rng.gen_range(0..100u32) < 40 {
            rng.gen_range(2..12usize)
        } else {
            1
        };
        for _ in 0..run.min(len - out.len()) {
            let eact = match rng.gen_range(0..4u32) {
                0 => Eact::ONE,
                1 => Eact::from_f64(1.5, 7),
                2 => Eact::from_f64(f64::from(rng.gen_range(1..40u32)) / 4.0, 7),
                _ => Eact::from_f64(2.25, 7),
            };
            out.push((row, eact));
        }
    }
    out
}

/// Splits `len` events into random batch sizes in `1..=max_batch`.
fn batch_sizes(seed: u64, len: usize, max_batch: usize) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C);
    let mut sizes = Vec::new();
    let mut left = len;
    while left > 0 {
        let b = rng.gen_range(1..=max_batch.min(left));
        sizes.push(b);
        left -= b;
    }
    sizes
}

/// Drives `per` per-record and `bat` batched over the same stream split into
/// `sizes`, asserting identical mitigation sequences batch-by-batch. Each batch
/// shares one `now` (the staging engine's contract). Returns the total
/// mitigation count.
fn drive(
    per: &mut dyn RowTracker,
    bat: &mut dyn RowTracker,
    events: &[(RowId, Eact)],
    sizes: &[usize],
) -> u64 {
    let mut total = 0u64;
    let mut offset = 0usize;
    let mut bat_out: Vec<MitigationRequest> = Vec::new();
    for (b, &size) in sizes.iter().enumerate() {
        let now = (b as u64 + 1) * 1_000;
        let batch = &events[offset..offset + size];
        let per_out: Vec<MitigationRequest> = batch
            .iter()
            .filter_map(|&(row, eact)| per.record(row, eact, now))
            .collect();
        let rows: Vec<RowId> = batch.iter().map(|&(r, _)| r).collect();
        let eacts: Vec<Eact> = batch.iter().map(|&(_, e)| e).collect();
        bat_out.clear();
        bat.record_batch(&rows, &eacts, now, &mut bat_out);
        assert_eq!(bat_out, per_out, "batch {b} diverged");
        total += per_out.len() as u64;
        offset += size;
    }
    total
}

proptest! {
    #[test]
    fn graphene_batched_matches_per_record(
        seed in 0u64..1_000_000,
        engine_summary in 0u32..2,
        universe in 4u32..64,
        max_batch in 1usize..80,
    ) {
        let engine = if engine_summary == 1 {
            EvictionEngine::Summary
        } else {
            EvictionEngine::Scan
        };
        // Tiny table and threshold so matches, evictions, spillover claims and
        // threshold crossings all occur within a short stream.
        let config = GrapheneConfig {
            threshold: 100,
            internal_threshold: 24,
            entries: 4,
            frac_bits: 7,
        };
        let mut per = Graphene::with_engine(config.clone(), engine);
        let mut bat = Graphene::with_engine(config, engine);
        let events = stream(seed, 600, universe);
        let sizes = batch_sizes(seed, events.len(), max_batch);
        let mitigations = drive(&mut per, &mut bat, &events, &sizes);
        prop_assert_eq!(per.mitigations(), mitigations);
        prop_assert_eq!(bat.mitigations(), per.mitigations());
        prop_assert_eq!(bat.spillover_raw(), per.spillover_raw());
        prop_assert_eq!(bat.headroom(), per.headroom());
        for row in 0..universe {
            prop_assert_eq!(bat.tracked_raw(row), per.tracked_raw(row));
        }
    }

    #[test]
    fn mithril_batched_matches_per_record_with_rfm(
        seed in 0u64..1_000_000,
        engine_summary in 0u32..2,
        universe in 4u32..64,
        max_batch in 1usize..80,
        rfm_every in 2usize..9,
    ) {
        let engine = if engine_summary == 1 {
            EvictionEngine::Summary
        } else {
            EvictionEngine::Scan
        };
        let config = MithrilConfig {
            threshold: 500,
            rfm_threshold: 16,
            entries: 4,
            frac_bits: 7,
        };
        let mut per = Mithril::with_engine(config.clone(), engine);
        let mut bat = Mithril::with_engine(config, engine);
        let events = stream(seed, 600, universe);
        let sizes = batch_sizes(seed, events.len(), max_batch);
        // Interleave RFMs between batches: Mithril only mitigates there, and
        // the staging engine always flushes before an RFM.
        let mut offset = 0usize;
        let mut bat_out: Vec<MitigationRequest> = Vec::new();
        for (b, &size) in sizes.iter().enumerate() {
            let now = (b as u64 + 1) * 1_000;
            let batch = &events[offset..offset + size];
            for &(row, eact) in batch {
                prop_assert_eq!(per.record(row, eact, now), None);
            }
            let rows: Vec<RowId> = batch.iter().map(|&(r, _)| r).collect();
            let eacts: Vec<Eact> = batch.iter().map(|&(_, e)| e).collect();
            bat_out.clear();
            bat.record_batch(&rows, &eacts, now, &mut bat_out);
            prop_assert!(bat_out.is_empty(), "Mithril record_batch must not mitigate");
            if b % rfm_every == rfm_every - 1 {
                prop_assert_eq!(bat.on_rfm(now), per.on_rfm(now));
            }
            offset += size;
        }
        prop_assert_eq!(bat.mitigations(), per.mitigations());
        prop_assert_eq!(bat.spillover_raw(), per.spillover_raw());
        for row in 0..universe {
            prop_assert_eq!(bat.tracked_raw(row), per.tracked_raw(row));
        }
    }

    #[test]
    fn prac_batched_matches_per_record(
        seed in 0u64..1_000_000,
        universe in 4u32..64,
        max_batch in 1usize..80,
    ) {
        // Alert threshold of 10 (threshold/2) so runs cross it repeatedly.
        let mut per = Prac::for_threshold(20, 7, 1 << 10);
        let mut bat = Prac::for_threshold(20, 7, 1 << 10);
        let events = stream(seed, 600, universe);
        let sizes = batch_sizes(seed, events.len(), max_batch);
        let mitigations = drive(&mut per, &mut bat, &events, &sizes);
        prop_assert_eq!(per.mitigations(), mitigations);
        prop_assert_eq!(bat.mitigations(), per.mitigations());
        prop_assert_eq!(bat.headroom(), per.headroom());
        for row in 0..universe {
            prop_assert_eq!(bat.count(row), per.count(row));
        }
    }

    #[test]
    fn para_batched_preserves_the_rng_stream(
        seed in 0u64..1_000_000,
        universe in 4u32..64,
        max_batch in 1usize..80,
    ) {
        let mut per = Para::with_probability(4_000, 0.05, seed ^ 0xABCD);
        let mut bat = Para::with_probability(4_000, 0.05, seed ^ 0xABCD);
        let events = stream(seed, 600, universe);
        let sizes = batch_sizes(seed, events.len(), max_batch);
        drive(&mut per, &mut bat, &events, &sizes);
        prop_assert_eq!(bat.decisions(), per.decisions());
        prop_assert_eq!(bat.mitigations(), per.mitigations());
    }

    /// The staging engine's safety invariant: any event span whose total weight
    /// (counting each event as `max(eact_raw, ONE)`) fits within the tracker's
    /// reported headroom is provably mitigation-free.
    #[test]
    fn headroom_admits_only_mitigation_free_spans(
        seed in 0u64..1_000_000,
        engine_summary in 0u32..2,
        universe in 4u32..64,
    ) {
        let engine = if engine_summary == 1 {
            EvictionEngine::Summary
        } else {
            EvictionEngine::Scan
        };
        let config = GrapheneConfig {
            threshold: 100,
            internal_threshold: 24,
            entries: 4,
            frac_bits: 7,
        };
        let mut graphene = Graphene::with_engine(config, engine);
        let mut prac = Prac::for_threshold(20, 7, 1 << 10);
        // Random warm-up prefix to land the trackers in an arbitrary state.
        let warmup = stream(seed, 200, universe);
        for &(row, eact) in &warmup {
            let _ = graphene.record(row, eact, 1);
            let _ = prac.record(row, eact, 1);
        }
        for tracker in [&mut graphene as &mut dyn RowTracker, &mut prac] {
            let mut left = tracker.headroom();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x4EAD);
            let span = stream(seed.wrapping_add(1), 400, universe);
            for &(row, eact) in &span {
                let w = u64::from(eact.raw().max(Eact::ONE.raw()));
                if w > left {
                    break;
                }
                left -= w;
                // Scatter the span across rows the warm-up may have maxed out.
                let row = if rng.gen_bool(0.5) { row } else { rng.gen_range(0..universe) };
                prop_assert_eq!(tracker.record(row, eact, 2), None);
            }
        }
    }
}
