//! Behavioral-equivalence property tests for the hot-path tracker rewrites.
//!
//! PR 2 replaced PRAC's `HashMap` with an open-addressed flat table and collapsed
//! Graphene's and Mithril's multi-scan Misra-Gries updates into single passes. These
//! tests drive the optimized trackers and straight transcriptions of the seed's
//! map/multi-scan algorithms with identical random activation streams and require
//! identical observable behavior: the same mitigation requests in the same order,
//! the same counter values, and the same state after refresh-window resets.
//!
//! Graphene/Mithril are pinned to [`EvictionEngine::Scan`] here: this suite is the
//! bit-identical contract of the *scan* engine. The O(1) stream-summary engine is
//! held to the (deliberately weaker) observational-equivalence contract in
//! `summary_equivalence.rs`.

use std::collections::HashMap;

use impress_trackers::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{
    EvictionEngine, Graphene, Mithril, MitigationRequest, Prac, RowSlotIndex, RowTracker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type RowId = u32;
type Cycle = u64;

/// The seed's PRAC: a `HashMap` counter table with half-threshold alerting.
struct ReferencePrac {
    alert_threshold: u64,
    frac_bits: u32,
    counters: HashMap<RowId, EactCounter>,
}

impl ReferencePrac {
    fn new(threshold: u64, frac_bits: u32) -> Self {
        Self {
            alert_threshold: (threshold / 2).max(1),
            frac_bits,
            counters: HashMap::new(),
        }
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.frac_bits;
            let truncated = (eact.raw() >> drop) << drop;
            Eact::from_raw(truncated.max(Eact::ONE.raw()))
        }
    }

    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        let counter = self.counters.entry(row).or_default();
        counter.add(eact);
        if counter.reached(self.alert_threshold) {
            *counter = EactCounter::ZERO;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        }
    }

    fn count(&self, row: RowId) -> u64 {
        self.counters.get(&row).map_or(0, |c| c.activations())
    }

    fn on_refresh_window(&mut self) {
        self.counters.clear();
    }
}

#[derive(Clone, Copy)]
struct RefEntry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// The seed's Graphene `record`: three separate table scans.
struct ReferenceGraphene {
    internal_threshold: u64,
    frac_bits: u32,
    table: Vec<RefEntry>,
    spillover: EactCounter,
}

impl ReferenceGraphene {
    fn new(config: &GrapheneConfig) -> Self {
        Self {
            internal_threshold: config.internal_threshold,
            frac_bits: config.frac_bits,
            table: vec![
                RefEntry {
                    row: 0,
                    count: EactCounter::ZERO,
                    valid: false,
                };
                config.entries
            ],
            spillover: EactCounter::ZERO,
        }
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }

    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        let slot = if let Some(i) = self.table.iter().position(|e| e.valid && e.row == row) {
            i
        } else if let Some(i) = self.table.iter().position(|e| !e.valid) {
            self.table[i] = RefEntry {
                row,
                count: self.spillover,
                valid: true,
            };
            i
        } else if let Some(i) = self
            .table
            .iter()
            .position(|e| e.count.raw() <= self.spillover.raw())
        {
            self.table[i] = RefEntry {
                row,
                count: self.spillover,
                valid: true,
            };
            i
        } else {
            self.spillover.add(eact);
            return None;
        };

        self.table[slot].count.add(eact);
        if self.table[slot].count.reached(self.internal_threshold) {
            self.table[slot].count = self.spillover;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        }
    }

    fn on_refresh_window(&mut self) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.spillover = EactCounter::ZERO;
    }
}

/// The seed's Mithril `record`/`on_rfm`: find + find + min_by_key scans.
struct ReferenceMithril {
    frac_bits: u32,
    table: Vec<RefEntry>,
    spillover: EactCounter,
}

impl ReferenceMithril {
    fn new(config: &MithrilConfig) -> Self {
        Self {
            frac_bits: config.frac_bits,
            table: vec![
                RefEntry {
                    row: 0,
                    count: EactCounter::ZERO,
                    valid: false,
                };
                config.entries
            ],
            spillover: EactCounter::ZERO,
        }
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }

    fn record(&mut self, row: RowId, eact: Eact) {
        let eact = self.quantize(eact);
        if let Some(e) = self.table.iter_mut().find(|e| e.valid && e.row == row) {
            e.count.add(eact);
        } else if let Some(e) = self.table.iter_mut().find(|e| !e.valid) {
            let mut count = self.spillover;
            count.add(eact);
            *e = RefEntry {
                row,
                count,
                valid: true,
            };
        } else if let Some(e) = self
            .table
            .iter_mut()
            .min_by_key(|e| e.count.raw())
            .filter(|e| e.count.raw() <= self.spillover.raw())
        {
            let mut count = self.spillover;
            count.add(eact);
            *e = RefEntry {
                row,
                count,
                valid: true,
            };
        } else {
            self.spillover.add(eact);
        }
    }

    fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        let best = self
            .table
            .iter_mut()
            .filter(|e| e.valid)
            .max_by_key(|e| e.count.raw())?;
        if best.count.raw() == 0 {
            return None;
        }
        let aggressor = best.row;
        best.count = self.spillover;
        Some(MitigationRequest {
            aggressor,
            identified_at: now,
        })
    }

    fn on_refresh_window(&mut self) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.spillover = EactCounter::ZERO;
    }
}

/// A random activation stream: mostly a small hot set (to exercise matches and
/// evictions) plus a uniform tail (to exercise spillover), with occasional
/// fractional EACT weights and refresh-window resets.
fn stream(seed: u64, len: usize, hot_rows: u32, universe: u32) -> Vec<(RowId, Eact, bool)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let row = if rng.gen_range(0..100u32) < 70 {
                rng.gen_range(0..hot_rows.max(1))
            } else {
                rng.gen_range(0..universe.max(1))
            };
            let eact = match rng.gen_range(0..4u32) {
                0 => Eact::ONE,
                1 => Eact::from_f64(1.5, 7),
                2 => Eact::from_f64(f64::from(rng.gen_range(1..40u32)) / 4.0, 7),
                _ => Eact::from_f64(2.25, 7),
            };
            let reset = rng.gen_range(0..1000u32) == 0;
            (row, eact, reset)
        })
        .collect()
}

proptest! {
    /// The flat-table PRAC behaves exactly like the seed's HashMap PRAC.
    #[test]
    fn prac_flat_table_matches_hashmap_reference(
        seed in 0u64..1_000_000,
        threshold in 8u64..600,
        frac_bits in 0u32..=7,
    ) {
        let mut optimized = Prac::for_threshold(threshold, frac_bits, 1 << 16);
        let mut reference = ReferencePrac::new(threshold, frac_bits);
        for (i, (row, eact, reset)) in stream(seed, 2_000, 24, 4096).into_iter().enumerate() {
            let now = i as u64 * 128;
            if reset {
                optimized.on_refresh_window(now);
                reference.on_refresh_window();
            }
            let a = optimized.record(row, eact, now);
            let b = reference.record(row, eact, now);
            prop_assert_eq!(a, b);
            prop_assert_eq!(optimized.count(row), reference.count(row));
        }
    }

    /// The single-pass Graphene update behaves exactly like the seed's three-scan
    /// update: same mitigation sequence and same tracked counts.
    ///
    /// Deliberately small tables (the paper-sized ~700-entry table makes the O(entries)
    /// reference scan unaffordable across 256 property cases in debug builds): every
    /// code path — match, invalid claim, spillover eviction, spillover overflow,
    /// mitigation rollback — is hit far more often with 4-48 entries, not less.
    #[test]
    fn graphene_single_pass_matches_three_scan_reference(
        seed in 0u64..1_000_000,
        entries in 4usize..48,
        internal_threshold in 20u64..300,
        frac_bits in 0u32..=7,
    ) {
        let config = GrapheneConfig {
            threshold: internal_threshold * 3,
            internal_threshold,
            entries,
            frac_bits,
        };
        let mut optimized = Graphene::with_engine(config.clone(), EvictionEngine::Scan);
        let mut reference = ReferenceGraphene::new(&config);
        // More distinct rows than table entries, so eviction and spillover paths run.
        let universe = (config.entries as u32).saturating_mul(3).max(64);
        for (i, (row, eact, reset)) in stream(seed, 2_000, 16, universe).into_iter().enumerate() {
            let now = i as u64 * 128;
            if reset {
                optimized.on_refresh_window(now);
                reference.on_refresh_window();
            }
            let a = optimized.record(row, eact, now);
            let b = reference.record(row, eact, now);
            prop_assert_eq!(a, b);
        }
        for row in 0..universe {
            let refcount = reference
                .table
                .iter()
                .find(|e| e.valid && e.row == row)
                .map(|e| e.count.activations());
            prop_assert_eq!(optimized.tracked_count(row), refcount);
        }
    }

    /// The row → slot index behaves exactly like a `HashMap<RowId, usize>` under
    /// tracker-shaped operation streams: inserts of absent rows, removals (present
    /// and absent), lookups, and full clears. Exercises backward-shift deletion by
    /// keeping the key universe small relative to the index capacity.
    #[test]
    fn row_slot_index_matches_hashmap_reference(
        seed in 0u64..1_000_000,
        entries in 1usize..64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut index = RowSlotIndex::for_entries(entries);
        let mut model: HashMap<RowId, usize> = HashMap::new();
        let universe = (entries as u32) * 4;
        for _step in 0..2_000u32 {
            let row = rng.gen_range(0..universe);
            match rng.gen_range(0..100u32) {
                // Insert (only when absent and the table has room, as trackers do).
                0..=44 if !model.contains_key(&row) && model.len() < entries => {
                    let slot = rng.gen_range(0..entries as u32) as usize;
                    index.insert(row, slot);
                    model.insert(row, slot);
                }
                // Remove, present or not.
                45..=84 => {
                    let was_present = model.remove(&row).is_some();
                    prop_assert_eq!(index.remove(row), was_present);
                }
                // Occasional refresh-window reset.
                85..=86 => {
                    index.clear();
                    model.clear();
                }
                // Lookup of a random row.
                _ => {}
            }
            prop_assert_eq!(index.get(row), model.get(&row).copied());
            prop_assert_eq!(index.len(), model.len());
        }
        // Full sweep: every key in the universe agrees.
        for row in 0..universe {
            prop_assert_eq!(index.get(row), model.get(&row).copied());
        }
    }

    /// Eviction-churn worst case for the indexed Graphene: every row is cold
    /// (universe >> entries, no hot set), so nearly every record evicts a table
    /// entry and rewrites the index. Behavior must still match the three-scan
    /// reference exactly.
    #[test]
    fn graphene_index_matches_reference_under_eviction_churn(
        seed in 0u64..1_000_000,
        entries in 4usize..32,
    ) {
        let config = GrapheneConfig {
            threshold: 300,
            internal_threshold: 100,
            entries,
            frac_bits: 7,
        };
        let mut optimized = Graphene::with_engine(config.clone(), EvictionEngine::Scan);
        let mut reference = ReferenceGraphene::new(&config);
        let universe = (entries as u32) * 16;
        for (i, (row, eact, reset)) in stream(seed, 3_000, universe, universe)
            .into_iter()
            .enumerate()
        {
            let now = i as u64 * 128;
            if reset {
                optimized.on_refresh_window(now);
                reference.on_refresh_window();
            }
            prop_assert_eq!(optimized.record(row, eact, now), reference.record(row, eact, now));
        }
        for row in 0..universe {
            let refcount = reference
                .table
                .iter()
                .find(|e| e.valid && e.row == row)
                .map(|e| e.count.activations());
            prop_assert_eq!(optimized.tracked_count(row), refcount);
        }
    }

    /// Same eviction-churn pinning for the indexed Mithril, including RFM-time
    /// hottest-row selection between churn bursts.
    #[test]
    fn mithril_index_matches_reference_under_eviction_churn(
        seed in 0u64..1_000_000,
        entries in 4usize..32,
    ) {
        let config = MithrilConfig {
            threshold: 4_000,
            rfm_threshold: 80,
            entries,
            frac_bits: 7,
        };
        let mut optimized = Mithril::with_engine(config.clone(), EvictionEngine::Scan);
        let mut reference = ReferenceMithril::new(&config);
        let universe = (entries as u32) * 16;
        for (i, (row, eact, reset)) in stream(seed, 3_000, universe, universe)
            .into_iter()
            .enumerate()
        {
            let now = i as u64 * 128;
            if reset {
                optimized.on_refresh_window(now);
                reference.on_refresh_window();
            }
            prop_assert_eq!(optimized.record(row, eact, now), None);
            reference.record(row, eact);
            if i % 80 == 79 {
                prop_assert_eq!(optimized.on_rfm(now), reference.on_rfm(now));
            }
        }
    }

    /// The single-pass Mithril update behaves exactly like the seed's scans,
    /// including the RFM-time hottest-row selection (same small-table rationale as
    /// the Graphene property above).
    #[test]
    fn mithril_single_pass_matches_reference(
        seed in 0u64..1_000_000,
        entries in 4usize..48,
        frac_bits in 0u32..=7,
    ) {
        let config = MithrilConfig {
            threshold: 4_000,
            rfm_threshold: 80,
            entries,
            frac_bits,
        };
        let mut optimized = Mithril::with_engine(config.clone(), EvictionEngine::Scan);
        let mut reference = ReferenceMithril::new(&config);
        let universe = (config.entries as u32).saturating_mul(3).max(64);
        for (i, (row, eact, _)) in stream(seed, 2_000, 16, universe).into_iter().enumerate() {
            let now = i as u64 * 128;
            prop_assert_eq!(optimized.record(row, eact, now), None);
            reference.record(row, eact);
            // RFM cadence: every 80 activations, both mitigate the hottest row.
            if i % 80 == 79 {
                let a = optimized.on_rfm(now);
                let b = reference.on_rfm(now);
                prop_assert_eq!(a, b);
            }
        }
    }
}
