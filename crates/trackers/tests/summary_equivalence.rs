//! Observational-equivalence property tests for the stream-summary eviction engine.
//!
//! PR 5 replaced the linear-scan eviction path of Graphene/Mithril with the
//! bucketed [`CountSummary`] structure (`EvictionEngine::Summary`). Among *tied*
//! minimum- (or maximum-) count entries the summary may pick a different victim
//! than the seed's table-order scan, so bit-identical selection is deliberately
//! relaxed to an **observational-equivalence contract**, which this suite pins:
//!
//! (a) On any access stream, as long as every victim choice has been
//!     *unambiguous* (exactly one claimable candidate on eviction, a unique
//!     maximum on RFM), the summary engine issues exactly the same mitigation
//!     requests at the same accesses as the scan engine, with identical counter
//!     state — checked access-by-access against an oracle transcription of the
//!     seed algorithm that also reports when a choice was ambiguous.
//!
//! (b) Regardless of ties, both engines satisfy the Misra-Gries/Space-Saving
//!     error bound. The security-relevant half holds on *any* stream: a row's
//!     true recorded weight since its last mitigation never exceeds its tracked
//!     counter (or, if untracked, the spillover count) — the tracker never
//!     undercounts, so every row crossing the internal threshold is caught. The
//!     classical `count_error ≤ N / k` bound on the spillover term is a
//!     *unit-increment* Misra-Gries property and is asserted exactly on
//!     unit-weight streams; weighted EACT streams can legitimately push the
//!     spillover past N/k (a new entry inherits the whole spillover count, so
//!     cheap evictions can re-arm an expensive spill — see
//!     `unit_weight_spillover_bound` for the discussion), and get the per-row
//!     no-undercount bound plus `spillover ≤ N` instead.
//!
//! (c) Decrement/reset round-trips (RFM and mitigation roll-backs, refresh-window
//!     clears) preserve the bucket-list ordering invariants, checked by
//!     [`CountSummary::validate`] against a naive model under randomized
//!     attach/detach/set-count/clear streams.

use std::collections::HashMap;

use impress_trackers::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{
    CountSummary, EvictionEngine, Graphene, Mithril, MitigationRequest, RowTracker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type RowId = u32;
type Cycle = u64;

fn quantize(eact: Eact, frac_bits: u32) -> Eact {
    if frac_bits >= CANONICAL_FRAC_BITS {
        eact
    } else {
        let drop = CANONICAL_FRAC_BITS - frac_bits;
        Eact::from_raw((eact.raw() >> drop) << drop)
    }
}

/// A random activation stream: a weighted hot set (matches, mitigations), a
/// uniform tail (evictions, spillover) and occasional refresh-window resets.
fn stream(seed: u64, len: usize, hot_rows: u32, universe: u32) -> Vec<(RowId, Eact, bool)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let row = if rng.gen_range(0..100u32) < 70 {
                rng.gen_range(0..hot_rows.max(1))
            } else {
                rng.gen_range(0..universe.max(1))
            };
            let eact = match rng.gen_range(0..4u32) {
                0 => Eact::ONE,
                1 => Eact::from_f64(1.5, 7),
                2 => Eact::from_f64(f64::from(rng.gen_range(1..40u32)) / 4.0, 7),
                _ => Eact::from_f64(2.25, 7),
            };
            let reset = rng.gen_range(0..1000u32) == 0;
            (row, eact, reset)
        })
        .collect()
}

#[derive(Clone, Copy)]
struct RefEntry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// Oracle transcription of the seed Graphene: behaves exactly like the scan
/// engine *and* reports whether each decision involved an ambiguous victim
/// choice (more than one claimable entry on an eviction).
struct GrapheneOracle {
    internal_threshold: u64,
    frac_bits: u32,
    table: Vec<RefEntry>,
    spillover: EactCounter,
}

impl GrapheneOracle {
    fn new(config: &GrapheneConfig) -> Self {
        Self {
            internal_threshold: config.internal_threshold,
            frac_bits: config.frac_bits,
            table: vec![
                RefEntry {
                    row: 0,
                    count: EactCounter::ZERO,
                    valid: false,
                };
                config.entries
            ],
            spillover: EactCounter::ZERO,
        }
    }

    /// Replays one record; returns the seed's mitigation decision and whether the
    /// victim choice (if any) was ambiguous.
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> (Option<MitigationRequest>, bool) {
        let eact = quantize(eact, self.frac_bits);
        let mut ambiguous = false;
        let slot = if let Some(i) = self.table.iter().position(|e| e.valid && e.row == row) {
            i
        } else if let Some(i) = self.table.iter().position(|e| !e.valid) {
            self.table[i] = RefEntry {
                row,
                count: self.spillover,
                valid: true,
            };
            i
        } else {
            let claimable = self
                .table
                .iter()
                .filter(|e| e.count.raw() <= self.spillover.raw())
                .count();
            ambiguous = claimable > 1;
            if let Some(i) = self
                .table
                .iter()
                .position(|e| e.count.raw() <= self.spillover.raw())
            {
                self.table[i] = RefEntry {
                    row,
                    count: self.spillover,
                    valid: true,
                };
                i
            } else {
                self.spillover.add(eact);
                return (None, false);
            }
        };
        self.table[slot].count.add(eact);
        if self.table[slot].count.reached(self.internal_threshold) {
            self.table[slot].count = self.spillover;
            (
                Some(MitigationRequest {
                    aggressor: row,
                    identified_at: now,
                }),
                ambiguous,
            )
        } else {
            (None, ambiguous)
        }
    }

    fn on_refresh_window(&mut self) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.spillover = EactCounter::ZERO;
    }
}

/// Oracle transcription of the seed Mithril, reporting ambiguity of eviction
/// (tied minima among valid entries) and RFM (tied maxima) choices.
struct MithrilOracle {
    frac_bits: u32,
    table: Vec<RefEntry>,
    spillover: EactCounter,
}

impl MithrilOracle {
    fn new(config: &MithrilConfig) -> Self {
        Self {
            frac_bits: config.frac_bits,
            table: vec![
                RefEntry {
                    row: 0,
                    count: EactCounter::ZERO,
                    valid: false,
                };
                config.entries
            ],
            spillover: EactCounter::ZERO,
        }
    }

    fn record(&mut self, row: RowId, eact: Eact) -> bool {
        let eact = quantize(eact, self.frac_bits);
        if let Some(e) = self.table.iter_mut().find(|e| e.valid && e.row == row) {
            e.count.add(eact);
            return false;
        }
        if let Some(e) = self.table.iter_mut().find(|e| !e.valid) {
            let mut count = self.spillover;
            count.add(eact);
            *e = RefEntry {
                row,
                count,
                valid: true,
            };
            return false;
        }
        let min_raw = self
            .table
            .iter()
            .map(|e| e.count.raw())
            .min()
            .unwrap_or(u64::MAX);
        if min_raw > self.spillover.raw() {
            self.spillover.add(eact);
            return false;
        }
        let ambiguous = self
            .table
            .iter()
            .filter(|e| e.count.raw() == min_raw)
            .count()
            > 1;
        let idx = self
            .table
            .iter()
            .position(|e| e.count.raw() == min_raw)
            .unwrap();
        let mut count = self.spillover;
        count.add(eact);
        self.table[idx] = RefEntry {
            row,
            count,
            valid: true,
        };
        ambiguous
    }

    fn on_rfm(&mut self, now: Cycle) -> (Option<MitigationRequest>, bool) {
        let Some(max_raw) = self
            .table
            .iter()
            .filter(|e| e.valid)
            .map(|e| e.count.raw())
            .max()
        else {
            return (None, false);
        };
        if max_raw == 0 {
            return (None, false);
        }
        let ambiguous = self
            .table
            .iter()
            .filter(|e| e.valid && e.count.raw() == max_raw)
            .count()
            > 1;
        // The seed used `max_by_key`, which returns the *last* maximal element.
        let idx = self
            .table
            .iter()
            .rposition(|e| e.valid && e.count.raw() == max_raw)
            .unwrap();
        let aggressor = self.table[idx].row;
        self.table[idx].count = self.spillover;
        (
            Some(MitigationRequest {
                aggressor,
                identified_at: now,
            }),
            ambiguous,
        )
    }

    fn on_refresh_window(&mut self) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.spillover = EactCounter::ZERO;
    }
}

/// Tracks each row's true recorded weight since its last mitigation (or the last
/// refresh-window reset), plus the total — the quantities of the Misra-Gries
/// error bound.
#[derive(Default)]
struct TrueWeights {
    per_row: HashMap<RowId, u64>,
    total: u64,
}

impl TrueWeights {
    fn record(&mut self, row: RowId, quantized: Eact) {
        let raw = u64::from(quantized.raw());
        *self.per_row.entry(row).or_insert(0) += raw;
        self.total += raw;
    }

    fn mitigated(&mut self, row: RowId) {
        self.per_row.insert(row, 0);
    }

    fn reset(&mut self) {
        self.per_row.clear();
        self.total = 0;
    }
}

proptest! {
    /// (a) Scan vs summary Graphene: identical mitigation decisions, counter
    /// state and spillover at every access, for as long as every victim choice
    /// has been unambiguous. (On fully unambiguous streams this is equality of
    /// the whole mitigation sequence — in particular of the mitigation multiset.)
    #[test]
    fn graphene_engines_agree_until_first_ambiguous_choice(
        seed in 0u64..1_000_000,
        entries in 2usize..32,
        internal_threshold in 20u64..300,
        frac_bits in 0u32..=7,
    ) {
        let config = GrapheneConfig {
            threshold: internal_threshold * 3,
            internal_threshold,
            entries,
            frac_bits,
        };
        let mut scan = Graphene::with_engine(config.clone(), EvictionEngine::Scan);
        let mut summary = Graphene::with_engine(config.clone(), EvictionEngine::Summary);
        let mut oracle = GrapheneOracle::new(&config);
        let universe = (entries as u32).saturating_mul(3).max(64);
        let mut clean_prefix = 0u32;
        for (i, (row, eact, reset)) in stream(seed, 2_000, 16, universe).into_iter().enumerate() {
            let now = i as u64 * 128;
            if reset {
                scan.on_refresh_window(now);
                summary.on_refresh_window(now);
                oracle.on_refresh_window();
            }
            let a = scan.record(row, eact, now);
            let b = summary.record(row, eact, now);
            let (expected, ambiguous) = oracle.record(row, eact, now);
            prop_assert!(a == expected, "scan engine diverged from seed at {i}: {a:?} vs {expected:?}");
            prop_assert!(b == expected, "summary engine diverged at {i} (unambiguous): {b:?} vs {expected:?}");
            prop_assert_eq!(scan.spillover_raw(), summary.spillover_raw());
            prop_assert_eq!(scan.tracked_raw(row), summary.tracked_raw(row));
            if ambiguous {
                // From the first ambiguous victim choice on, the engines may
                // legitimately track different rows; only the error bound
                // (tested separately) is guaranteed.
                break;
            }
            clean_prefix += 1;
        }
        // Bookkeeping so a generator regression (never exercising eviction at
        // all) cannot silently hollow the property out.
        prop_assert!(clean_prefix > 0);
    }

    /// (a) Scan vs summary Mithril, including RFM-time maximum selection:
    /// identical records and RFM mitigations until the first ambiguous choice
    /// (tied minimum on eviction or tied maximum on RFM).
    #[test]
    fn mithril_engines_agree_until_first_ambiguous_choice(
        seed in 0u64..1_000_000,
        entries in 2usize..32,
        frac_bits in 0u32..=7,
    ) {
        let config = MithrilConfig {
            threshold: 4_000,
            rfm_threshold: 80,
            entries,
            frac_bits,
        };
        let mut scan = Mithril::with_engine(config.clone(), EvictionEngine::Scan);
        let mut summary = Mithril::with_engine(config.clone(), EvictionEngine::Summary);
        let mut oracle = MithrilOracle::new(&config);
        let universe = (entries as u32).saturating_mul(3).max(64);
        'stream: for (i, (row, eact, reset)) in
            stream(seed, 2_000, 16, universe).into_iter().enumerate()
        {
            let now = i as u64 * 128;
            if reset {
                scan.on_refresh_window(now);
                summary.on_refresh_window(now);
                oracle.on_refresh_window();
            }
            prop_assert_eq!(scan.record(row, eact, now), None);
            prop_assert_eq!(summary.record(row, eact, now), None);
            let ambiguous = oracle.record(row, eact);
            prop_assert_eq!(scan.spillover_raw(), summary.spillover_raw());
            prop_assert_eq!(scan.tracked_raw(row), summary.tracked_raw(row));
            if ambiguous {
                break 'stream;
            }
            if i % 80 == 79 {
                let a = scan.on_rfm(now);
                let b = summary.on_rfm(now);
                let (expected, rfm_ambiguous) = oracle.on_rfm(now);
                prop_assert!(a == expected, "scan RFM diverged from seed at {i}: {a:?} vs {expected:?}");
                if rfm_ambiguous {
                    // A tied maximum: both engines must still mitigate *some*
                    // maximal row now, but may disagree on which.
                    prop_assert_eq!(b.is_some(), expected.is_some());
                    break 'stream;
                }
                prop_assert!(b == expected, "summary RFM diverged at {i} (unambiguous): {b:?} vs {expected:?}");
            }
        }
    }

    /// (b) The Misra-Gries error bound holds for both engines on any stream,
    /// ties included: a row's true weight since its last mitigation never
    /// exceeds its tracked counter (or, if untracked, the spillover count), and
    /// the spillover count never exceeds N/k.
    #[test]
    fn graphene_error_bound_holds_for_both_engines(
        seed in 0u64..1_000_000,
        entries in 1usize..32,
        internal_threshold in 20u64..300,
        frac_bits in 0u32..=7,
    ) {
        let config = GrapheneConfig {
            threshold: internal_threshold * 3,
            internal_threshold,
            entries,
            frac_bits,
        };
        for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
            let mut tracker = Graphene::with_engine(config.clone(), engine);
            let mut truth = TrueWeights::default();
            let universe = (entries as u32).saturating_mul(4).max(64);
            for (i, (row, eact, reset)) in
                stream(seed, 2_000, 12, universe).into_iter().enumerate()
            {
                let now = i as u64 * 128;
                if reset {
                    tracker.on_refresh_window(now);
                    truth.reset();
                }
                let mitigation = tracker.record(row, eact, now);
                truth.record(row, quantize(eact, frac_bits));
                if mitigation.is_some() {
                    truth.mitigated(row);
                }
                let est = tracker.tracked_raw(row).unwrap_or_else(|| tracker.spillover_raw());
                prop_assert!(
                    truth.per_row[&row] <= est,
                    "{engine}: row {row} true weight {} exceeds estimate {} at {i}",
                    truth.per_row[&row], est
                );
                prop_assert!(
                    tracker.spillover_raw() <= truth.total,
                    "{engine}: spillover {} exceeds total recorded weight {} at {i}",
                    tracker.spillover_raw(), truth.total
                );
            }
            // Final sweep: the bound holds for every row, not just the last touched.
            for (&row, &true_raw) in &truth.per_row {
                let est = tracker.tracked_raw(row).unwrap_or_else(|| tracker.spillover_raw());
                prop_assert!(true_raw <= est, "{engine}: final bound broken for row {row}");
            }
        }
    }

    /// (b) The same error bound for Mithril, with RFM roll-backs in the stream.
    #[test]
    fn mithril_error_bound_holds_for_both_engines(
        seed in 0u64..1_000_000,
        entries in 1usize..32,
        frac_bits in 0u32..=7,
    ) {
        let config = MithrilConfig {
            threshold: 4_000,
            rfm_threshold: 80,
            entries,
            frac_bits,
        };
        for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
            let mut tracker = Mithril::with_engine(config.clone(), engine);
            let mut truth = TrueWeights::default();
            let universe = (entries as u32).saturating_mul(4).max(64);
            for (i, (row, eact, reset)) in
                stream(seed, 2_000, 12, universe).into_iter().enumerate()
            {
                let now = i as u64 * 128;
                if reset {
                    tracker.on_refresh_window(now);
                    truth.reset();
                }
                prop_assert_eq!(tracker.record(row, eact, now), None);
                truth.record(row, quantize(eact, frac_bits));
                if i % 80 == 79 {
                    if let Some(m) = tracker.on_rfm(now) {
                        truth.mitigated(m.aggressor);
                    }
                }
                let est = tracker.tracked_raw(row).unwrap_or_else(|| tracker.spillover_raw());
                prop_assert!(
                    truth.per_row[&row] <= est,
                    "{engine}: row {row} true weight {} exceeds estimate {} at {i}",
                    truth.per_row[&row], est
                );
                prop_assert!(
                    tracker.spillover_raw() <= truth.total,
                    "{engine}: spillover {} exceeds total recorded weight {} at {i}",
                    tracker.spillover_raw(), truth.total
                );
            }
            for (&row, &true_raw) in &truth.per_row {
                let est = tracker.tracked_raw(row).unwrap_or_else(|| tracker.spillover_raw());
                prop_assert!(true_raw <= est, "{engine}: final bound broken for row {row}");
            }
        }
    }

    /// (b) The classical Misra-Gries bound `count_error ≤ N/k` on the spillover
    /// term, in its home setting: unit-weight increments (plain Rowhammer
    /// accounting, `frac_bits = 0`). With unit weights, raising the spillover by
    /// one unit requires every table entry to be pushed past it first, so the
    /// error term amortizes over `k + 1` counters; weighted streams break this
    /// (a freshly evicted entry inherits the whole spillover count for the price
    /// of its own small weight, re-arming an arbitrarily large spill), which is
    /// why the weighted properties above assert the no-undercount bound instead.
    #[test]
    fn unit_weight_spillover_bound(
        seed in 0u64..1_000_000,
        entries in 1usize..32,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let universe = (entries as u32).saturating_mul(4).max(64);
        let accesses: Vec<RowId> = (0..2_000).map(|_| rng.gen_range(0..universe)).collect();
        for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
            let graphene_config = GrapheneConfig {
                threshold: 3_000,
                internal_threshold: 1_000,
                entries,
                frac_bits: 0,
            };
            let mut graphene = Graphene::with_engine(graphene_config, engine);
            let mithril_config = MithrilConfig {
                threshold: 4_000,
                rfm_threshold: 80,
                entries,
                frac_bits: 0,
            };
            let mut mithril = Mithril::with_engine(mithril_config, engine);
            let mut total = 0u64;
            for (i, &row) in accesses.iter().enumerate() {
                let now = i as u64 * 128;
                graphene.record(row, Eact::ONE, now);
                mithril.record(row, Eact::ONE, now);
                if i % 80 == 79 {
                    mithril.on_rfm(now);
                }
                total += u64::from(Eact::ONE.raw());
                prop_assert!(
                    graphene.spillover_raw() * entries as u64 <= total,
                    "{engine}: Graphene spillover {} exceeds N/k = {}/{entries} at {i}",
                    graphene.spillover_raw(), total
                );
                prop_assert!(
                    mithril.spillover_raw() * entries as u64 <= total,
                    "{engine}: Mithril spillover {} exceeds N/k = {}/{entries} at {i}",
                    mithril.spillover_raw(), total
                );
            }
        }
    }

    /// (c) Bucket-list ordering invariants survive arbitrary attach / detach /
    /// increment / decrement / clear round-trips: the structure validator passes
    /// after every operation and min/max/count agree with a naive model.
    #[test]
    fn count_summary_matches_naive_model_with_valid_structure(
        seed in 0u64..1_000_000,
        slots in 1usize..24,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut summary = CountSummary::new(slots);
        let mut model: Vec<Option<u64>> = vec![None; slots];
        for step in 0..1_500u32 {
            let slot = rng.gen_range(0..slots as u32) as usize;
            match rng.gen_range(0..100u32) {
                // Attach (if absent) at a possibly-colliding count.
                0..=34 => {
                    if model[slot].is_none() {
                        let count = u64::from(rng.gen_range(0..40u32));
                        summary.attach(slot, count);
                        model[slot] = Some(count);
                    }
                }
                // Detach (if present) — the eviction half of a round-trip.
                35..=54 => {
                    if model[slot].is_some() {
                        summary.detach(slot);
                        model[slot] = None;
                    }
                }
                // Increment by a small delta (activation recorded).
                55..=74 => {
                    if let Some(c) = model[slot] {
                        let next = c + u64::from(rng.gen_range(1..200u32));
                        summary.set_count(slot, next);
                        model[slot] = Some(next);
                    }
                }
                // Decrement toward a spillover-like floor (mitigation roll-back),
                // sometimes to an existing bucket's exact count.
                75..=94 => {
                    if let Some(c) = model[slot] {
                        let floor = rng.gen_range(0..=c);
                        summary.set_count(slot, floor);
                        model[slot] = Some(floor);
                    }
                }
                // Refresh-window clear.
                _ => {
                    summary.clear();
                    model.fill(None);
                }
            }
            summary.validate();
            let attached: Vec<(usize, u64)> = model
                .iter()
                .enumerate()
                .filter_map(|(s, c)| c.map(|c| (s, c)))
                .collect();
            prop_assert!(summary.len() == attached.len(), "step {step}: len mismatch");
            let model_min = attached.iter().map(|&(_, c)| c).min();
            let model_max = attached.iter().map(|&(_, c)| c).max();
            prop_assert_eq!(summary.min().map(|(_, c)| c), model_min);
            prop_assert_eq!(summary.max().map(|(_, c)| c), model_max);
            if let Some((s, c)) = summary.min() {
                prop_assert!(model[s] == Some(c), "min slot holds a different count");
            }
            if let Some((s, c)) = summary.max() {
                prop_assert!(model[s] == Some(c), "max slot holds a different count");
            }
            for (s, c) in attached {
                prop_assert_eq!(summary.count_of(s), Some(c));
            }
        }
    }
}
