//! Binary trace codec: framed chunks of fixed-width access records.
//!
//! The `impress-trace` frontend exchanges physical-address streams in a simple,
//! self-describing binary format designed for streaming ingestion:
//!
//! ```text
//! header:  "IMPT" | version u16 | flags u16 | cores u8 | name_len u8
//!          | name (name_len bytes, UTF-8)
//!          | instructions_per_miss: cores × f64  (little-endian bit patterns)
//! frame:   "IMPC" | record_count u32 | record_count × 16-byte records | checksum u64
//! record:  address u64 | gap u32 | core u8 | flags u8 (bit 0 = write) | reserved u16
//! ```
//!
//! All integers are little-endian. Frames are self-delimiting and checksummed, so a
//! reader can stream chunk-by-chunk from a file, a pipe or a socket without knowing
//! the total length in advance, and corruption is detected at frame granularity.
//! Records are exactly [`RECORD_BYTES`] wide so an mmap'd payload can be cast to a
//! record array by readers that want zero-copy access.
//!
//! # Corruption handling
//!
//! The reader has two [`DecodeMode`]s:
//!
//! * [`DecodeMode::Strict`] (the default) aborts on the first corrupt structure
//!   with an error that names the absolute byte offset and frame index.
//! * [`DecodeMode::Resync`] treats the frame magic as a resynchronization marker:
//!   on a bad magic, an implausible record count, a checksum mismatch or a
//!   truncated frame it scans forward for the next `IMPC`, skips the damaged
//!   region, and records a structured [`IngestFault`]. Each fault carries a
//!   **conservative upper bound** on the records lost in the skipped region
//!   (`ceil(bytes_skipped / RECORD_BYTES)`, and at least the frame's declared
//!   record count when that count was plausible), so downstream verdicts can
//!   report a worst-case unaccounted-disturbance bound instead of silently
//!   under-counting. A stream that ends mid-structure sets
//!   [`TraceReader::truncated`]; truncation that happens to land exactly on a
//!   frame boundary is indistinguishable from a clean end of stream in-band
//!   (higher layers bound it with checkpointed record counts).
//!
//! Strict-mode decoding of well-formed streams is bit-identical to the resync
//! path — the modes differ only in how damage is answered.

use std::io::{self, Read, Write};

use impress_dram::address::PhysicalAddress;

use crate::source::TraceSource;
use crate::trace::MemoryAccess;

/// Magic bytes opening a trace stream.
pub const TRACE_MAGIC: [u8; 4] = *b"IMPT";
/// Magic bytes opening each frame.
pub const FRAME_MAGIC: [u8; 4] = *b"IMPC";
/// Codec version emitted by [`TraceWriter`]. v2 changed the frame checksum
/// from byte-serial FNV-1a to the word-parallel [`frame_checksum`]; layout is
/// otherwise identical to v1.
pub const TRACE_VERSION: u16 = 2;
/// Size of one encoded record in bytes.
pub const RECORD_BYTES: usize = 16;
/// Records per frame emitted by [`TraceWriter`] (128 KiB of payload).
pub const FRAME_RECORDS: usize = 8192;

/// Header flag: records carry meaningful inter-arrival gaps.
const FLAG_HAS_GAPS: u16 = 1 << 0;
/// Record flag: the access is a write.
const REC_WRITE: u8 = 1 << 0;

/// Stream-level metadata carried in the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Name of the workload the trace was recorded from.
    pub name: String,
    /// Number of cores whose accesses appear in the stream.
    pub cores: u8,
    /// Whether records carry meaningful inter-arrival gaps (open-loop replay);
    /// when false every `gap` field is zero and replay paces itself.
    pub has_gaps: bool,
    /// Per-core average instructions per LLC miss, so closed-loop replay can
    /// rebuild the same core models the recording run used.
    pub instructions_per_miss: Vec<f64>,
}

/// One trace record: a memory access plus the inter-arrival gap (in DRAM cycles)
/// since the previous record in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Physical byte address of the access.
    pub address: u64,
    /// DRAM cycles since the previous record in the stream (0 when unknown).
    pub gap: u32,
    /// Core that issued the access.
    pub core: u8,
    /// Whether the access is a write.
    pub is_write: bool,
}

impl TraceRecord {
    /// Wraps a [`MemoryAccess`] with an inter-arrival gap.
    pub fn from_access(access: MemoryAccess, gap: u32) -> Self {
        Self {
            address: access.address.as_u64(),
            gap,
            core: access.core,
            is_write: access.is_write,
        }
    }

    /// The access this record describes.
    pub fn to_access(self) -> MemoryAccess {
        MemoryAccess {
            address: PhysicalAddress::new(self.address),
            is_write: self.is_write,
            core: self.core,
        }
    }

    /// Encodes the record into its 16-byte wire form.
    pub fn encode(self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.address.to_le_bytes());
        out[8..12].copy_from_slice(&self.gap.to_le_bytes());
        out[12] = self.core;
        out[13] = if self.is_write { REC_WRITE } else { 0 };
        // out[14..16] reserved, zero.
        out
    }

    /// Decodes a record from its 16-byte wire form.
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> Self {
        Self {
            address: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            gap: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            core: bytes[12],
            is_write: bytes[13] & REC_WRITE != 0,
        }
    }
}

/// Per-frame checksum: four interleaved multiply-xor lanes over 8-byte words,
/// folded and finished with a splitmix64-style avalanche.
///
/// Replaces the v1 codec's byte-at-a-time FNV-1a, whose loop-carried multiply
/// serialized the whole payload through one ~4-cycle dependency chain per
/// byte — checksumming alone was a measurable share of the open-loop ingest
/// pipeline. Four independent lanes keep the multiplies off the critical
/// path (the frame payload is 128 KiB, so lane startup is amortized to
/// nothing). Detection quality for random corruption is equivalent: every
/// payload bit feeds a multiply and the final avalanche, and the length term
/// separates truncated prefixes. Like v1, this is corruption detection, not
/// a cryptographic MAC.
fn frame_checksum(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64,
        0x8422_2325_cbf2_9ce4,
        0x2545_f491_4f6c_dd1d,
        0x27d4_eb2f_1656_67c5,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(K);
        }
    }
    // Distinct rotations keep the fold from cancelling lane-aligned damage.
    let mut h = lanes[0]
        .rotate_left(1)
        .wrapping_add(lanes[1].rotate_left(7))
        .wrapping_add(lanes[2].rotate_left(17))
        .wrapping_add(lanes[3].rotate_left(29));
    for word in blocks.remainder().chunks(8) {
        let mut padded = [0u8; 8];
        padded[..word.len()].copy_from_slice(word);
        h = (h ^ u64::from_le_bytes(padded)).wrapping_mul(K);
    }
    h ^= bytes.len() as u64;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// How a [`TraceReader`] responds to corrupt input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeMode {
    /// Abort on the first corrupt structure (the default).
    #[default]
    Strict,
    /// Skip damaged regions by scanning for the next frame magic, recording an
    /// [`IngestFault`] per incident.
    Resync,
}

/// What kind of damage a resynchronizing reader encountered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The bytes where a frame should start are not [`FRAME_MAGIC`].
    BadFrameMagic,
    /// A frame declared more than [`FRAME_RECORDS`] records — the count field is
    /// corrupt (the writer never emits oversized frames).
    OversizedFrame,
    /// A frame's payload does not match its stored checksum.
    ChecksumMismatch,
    /// The stream ended inside a frame.
    TruncatedFrame,
}

impl FaultKind {
    /// Stable kebab-case label used in canonical JSON ledgers.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BadFrameMagic => "bad-frame-magic",
            FaultKind::OversizedFrame => "oversized-frame",
            FaultKind::ChecksumMismatch => "checksum-mismatch",
            FaultKind::TruncatedFrame => "truncated-frame",
        }
    }
}

/// One corruption incident survived by a [`DecodeMode::Resync`] reader.
///
/// `records_lost` is a conservative **upper bound** on the records that were in
/// the skipped region: at least `ceil(bytes_skipped / RECORD_BYTES)` (a skipped
/// region can hold no more records than that) and at least the damaged frame's
/// declared record count when that count was plausible. Summed over a ledger it
/// upper-bounds the stream's true in-band loss, which is what lets a verdict
/// report a worst-case unaccounted-disturbance figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestFault {
    /// What was wrong.
    pub kind: FaultKind,
    /// Absolute byte offset at which the fault was detected (the start of the
    /// structure that failed to parse).
    pub offset: u64,
    /// Index of the frame being decoded when the fault hit (frames decoded so
    /// far; skipped regions do not advance it).
    pub frame_index: u64,
    /// Bytes skipped to reach the next parsable structure (or the end of the
    /// stream).
    pub bytes_skipped: u64,
    /// Conservative upper bound on records lost in the skipped region.
    pub records_lost: u64,
}

/// Streaming trace writer: buffers records and emits checksummed frames.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    payload: Vec<u8>,
    records_in_frame: usize,
    records_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the stream header and returns a writer ready for records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer; rejects metadata whose
    /// name exceeds 255 bytes or whose per-core table does not match `cores`.
    pub fn new(mut inner: W, meta: &TraceMeta) -> io::Result<Self> {
        if meta.name.len() > u8::MAX as usize {
            return Err(bad_data("trace name longer than 255 bytes"));
        }
        if meta.instructions_per_miss.len() != meta.cores as usize {
            return Err(bad_data("instructions_per_miss length must equal cores"));
        }
        let mut header = Vec::with_capacity(16 + meta.name.len() + meta.cores as usize * 8);
        header.extend_from_slice(&TRACE_MAGIC);
        header.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        let flags = if meta.has_gaps { FLAG_HAS_GAPS } else { 0 };
        header.extend_from_slice(&flags.to_le_bytes());
        header.push(meta.cores);
        header.push(meta.name.len() as u8);
        header.extend_from_slice(meta.name.as_bytes());
        for ipm in &meta.instructions_per_miss {
            header.extend_from_slice(&ipm.to_bits().to_le_bytes());
        }
        inner.write_all(&header)?;
        Ok(Self {
            inner,
            payload: Vec::with_capacity(FRAME_RECORDS * RECORD_BYTES),
            records_in_frame: 0,
            records_written: 0,
        })
    }

    /// Appends one record, flushing a frame when it fills.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.payload.extend_from_slice(&record.encode());
        self.records_in_frame += 1;
        self.records_written += 1;
        if self.records_in_frame == FRAME_RECORDS {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Total records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.records_in_frame == 0 {
            return Ok(());
        }
        self.inner.write_all(&FRAME_MAGIC)?;
        self.inner
            .write_all(&(self.records_in_frame as u32).to_le_bytes())?;
        self.inner.write_all(&self.payload)?;
        self.inner
            .write_all(&frame_checksum(&self.payload).to_le_bytes())?;
        self.payload.clear();
        self.records_in_frame = 0;
        Ok(())
    }

    /// Flushes the final partial frame and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_frame()?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace reader: pulls chunks from a [`TraceSource`], reassembles
/// frames across chunk boundaries, verifies checksums and yields records.
#[derive(Debug)]
pub struct TraceReader<S: TraceSource> {
    source: S,
    /// Unconsumed bytes carried across chunk boundaries.
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted lazily).
    at: usize,
    /// Absolute stream offset of `buf[0]` (bytes consumed and compacted away).
    base: u64,
    meta: TraceMeta,
    /// Decoded records of the current frame, yielded in order.
    frame: Vec<TraceRecord>,
    frame_at: usize,
    /// Absolute offset of the current frame's first byte (its magic).
    frame_start: u64,
    /// Frames decoded successfully so far.
    frames_decoded: u64,
    exhausted: bool,
    mode: DecodeMode,
    /// Corruption incidents survived so far (resync mode only).
    faults: Vec<IngestFault>,
    /// Set when the stream ended inside a structure (resync mode only; strict
    /// mode reports truncation as an `UnexpectedEof` error instead).
    truncated: bool,
}

impl<S: TraceSource> TraceReader<S> {
    /// Reads the stream header from `source` and returns a strict-mode reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic, version or header structure is wrong,
    /// or `UnexpectedEof` if the stream ends mid-header.
    pub fn new(source: S) -> io::Result<Self> {
        Self::with_mode(source, DecodeMode::Strict)
    }

    /// Reads the stream header from `source` and returns a reader in `mode`.
    ///
    /// The header itself is always decoded strictly — without it there is no
    /// metadata to resynchronize under — so a corrupt header errors in both
    /// modes. Frame-level damage is where the modes diverge.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::new`].
    pub fn with_mode(source: S, mode: DecodeMode) -> io::Result<Self> {
        let mut reader = Self {
            source,
            buf: Vec::new(),
            at: 0,
            base: 0,
            meta: TraceMeta {
                name: String::new(),
                cores: 0,
                has_gaps: false,
                instructions_per_miss: Vec::new(),
            },
            frame: Vec::new(),
            frame_at: 0,
            frame_start: 0,
            frames_decoded: 0,
            exhausted: false,
            mode,
            faults: Vec::new(),
            truncated: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// Stream metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The decode mode this reader was built with.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Absolute byte offset of the next unconsumed stream byte.
    pub fn byte_offset(&self) -> u64 {
        self.base + self.at as u64
    }

    /// Absolute byte offset of the next record to be yielded, at record
    /// granularity: inside a decoded frame this points at the record's first
    /// payload byte, between frames it equals [`TraceReader::byte_offset`].
    /// Deterministic for a given stream, which is what checkpoint/resume
    /// validation keys on.
    pub fn position(&self) -> u64 {
        if self.frame_at < self.frame.len() {
            self.frame_start + 8 + (self.frame_at * RECORD_BYTES) as u64
        } else {
            self.byte_offset()
        }
    }

    /// Frames decoded successfully so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Corruption incidents survived so far (always empty in strict mode).
    pub fn faults(&self) -> &[IngestFault] {
        &self.faults
    }

    /// Takes ownership of the fault ledger accumulated so far.
    pub fn take_faults(&mut self) -> Vec<IngestFault> {
        std::mem::take(&mut self.faults)
    }

    /// Drains transport-layer events from the underlying source (empty for
    /// file-backed sources; socket sources report reconnects, disconnects,
    /// deduped duplicates, and graceful drains here).
    pub fn take_transport_events(&mut self) -> Vec<crate::source::TransportEvent> {
        self.source.take_transport_events()
    }

    /// Whether the stream ended inside a structure (resync mode only).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Total records conservatively counted as lost across all faults so far.
    pub fn records_lost(&self) -> u64 {
        self.faults.iter().map(|f| f.records_lost).sum()
    }

    /// Yields the next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a corrupt frame (bad magic or checksum) and
    /// `UnexpectedEof` if the stream ends inside a frame.
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        loop {
            if self.frame_at < self.frame.len() {
                let r = self.frame[self.frame_at];
                self.frame_at += 1;
                return Ok(Some(r));
            }
            if !self.read_frame()? {
                return Ok(None);
            }
        }
    }

    /// Reads every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::next_record`].
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Unconsumed bytes currently buffered.
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Tries to buffer at least `need` unconsumed bytes; returns false when the
    /// stream ended first (callers distinguish a clean end of stream, where
    /// [`TraceReader::remaining`] is zero, from a truncated structure).
    fn want(&mut self, need: usize) -> io::Result<bool> {
        while self.remaining() < need {
            if self.exhausted {
                return Ok(false);
            }
            // Compact before growing so long streams don't accumulate dead bytes.
            if self.at > 0 {
                self.base += self.at as u64;
                self.buf.drain(..self.at);
                self.at = 0;
            }
            match self.source.next_chunk()? {
                Some(chunk) => self.buf.extend_from_slice(chunk),
                None => self.exhausted = true,
            }
        }
        Ok(true)
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        s
    }

    /// Truncation error with position context (strict mode).
    fn eof_err(&self, what: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "{what} at byte {}, frame {}",
                self.byte_offset(),
                self.frames_decoded
            ),
        )
    }

    /// Corruption error with position context (strict mode). `offset` is the
    /// absolute position of the structure that failed to decode.
    fn corrupt_err(&self, what: &str, offset: u64) -> io::Error {
        bad_data(&format!(
            "{what} at byte {offset}, frame {}",
            self.frames_decoded
        ))
    }

    fn read_header(&mut self) -> io::Result<()> {
        if !self.want(10)? {
            if self.remaining() == 0 {
                return Err(self.eof_err("empty trace stream"));
            }
            return Err(self.eof_err("trace header truncated"));
        }
        if self.take(4) != TRACE_MAGIC {
            return Err(self.corrupt_err("not an impress trace (bad magic)", 0));
        }
        let version = u16::from_le_bytes(self.take(2).try_into().unwrap());
        if version != TRACE_VERSION {
            return Err(self.corrupt_err("unsupported trace version", 4));
        }
        let flags = u16::from_le_bytes(self.take(2).try_into().unwrap());
        let cores = self.take(1)[0];
        let name_len = self.take(1)[0] as usize;
        if !self.want(name_len + cores as usize * 8)? {
            return Err(self.eof_err("trace header truncated"));
        }
        let name = String::from_utf8(self.take(name_len).to_vec())
            .map_err(|_| self.corrupt_err("trace name is not UTF-8", 10))?;
        let mut instructions_per_miss = Vec::with_capacity(cores as usize);
        for _ in 0..cores {
            let bits = u64::from_le_bytes(self.take(8).try_into().unwrap());
            instructions_per_miss.push(f64::from_bits(bits));
        }
        self.meta = TraceMeta {
            name,
            cores,
            has_gaps: flags & FLAG_HAS_GAPS != 0,
            instructions_per_miss,
        };
        Ok(())
    }

    /// Reads and verifies the next frame; returns false at the end of the stream.
    fn read_frame(&mut self) -> io::Result<bool> {
        match self.mode {
            DecodeMode::Strict => self.read_frame_strict(),
            DecodeMode::Resync => self.read_frame_resync(),
        }
    }

    fn read_frame_strict(&mut self) -> io::Result<bool> {
        if !self.want(8)? {
            if self.remaining() == 0 {
                return Ok(false);
            }
            return Err(self.eof_err("trace frame truncated"));
        }
        let start = self.byte_offset();
        if self.take(4) != FRAME_MAGIC {
            return Err(self.corrupt_err("corrupt trace frame (bad magic)", start));
        }
        let count = u32::from_le_bytes(self.take(4).try_into().unwrap()) as usize;
        if count > FRAME_RECORDS {
            // The writer never emits oversized frames, so the count field is
            // corrupt; erroring here also stops a hostile count from demanding
            // gigabytes of buffer.
            return Err(self.corrupt_err(
                &format!("implausible frame record count {count} (max {FRAME_RECORDS})"),
                start + 4,
            ));
        }
        let payload_len = count * RECORD_BYTES;
        if !self.want(payload_len + 8)? {
            return Err(self.eof_err("trace frame truncated"));
        }
        let payload_start = self.at;
        self.at += payload_len;
        let stored = u64::from_le_bytes(self.take(8).try_into().unwrap());
        let payload = &self.buf[payload_start..payload_start + payload_len];
        if frame_checksum(payload) != stored {
            return Err(self.corrupt_err("trace frame checksum mismatch", start));
        }
        self.decode_frame_payload(payload_start, payload_len, count, start);
        Ok(true)
    }

    /// Decodes the validated payload at `buf[payload_start..]` into the frame
    /// buffer. The payload has already been consumed (`at` points past it).
    fn decode_frame_payload(
        &mut self,
        payload_start: usize,
        payload_len: usize,
        count: usize,
        frame_start: u64,
    ) {
        let payload = &self.buf[payload_start..payload_start + payload_len];
        self.frame.clear();
        self.frame_at = 0;
        self.frame.reserve(count);
        for i in 0..count {
            let bytes: &[u8; RECORD_BYTES] = payload[i * RECORD_BYTES..(i + 1) * RECORD_BYTES]
                .try_into()
                .unwrap();
            self.frame.push(TraceRecord::decode(bytes));
        }
        self.frame_start = frame_start;
        self.frames_decoded += 1;
    }

    /// Resynchronizing frame reader: validates frames before consuming them, and
    /// answers damage by scanning forward for the next frame magic instead of
    /// erroring. Always terminates: every fault consumes at least one byte.
    fn read_frame_resync(&mut self) -> io::Result<bool> {
        loop {
            if !self.want(8)? {
                if self.remaining() == 0 {
                    return Ok(false);
                }
                // Trailing bytes too short to even hold a frame header.
                self.record_truncation(None)?;
                return Ok(false);
            }
            let start = self.byte_offset();
            if self.buf[self.at..self.at + 4] != FRAME_MAGIC {
                self.resync_skip(start, FaultKind::BadFrameMagic, 0)?;
                continue;
            }
            let count = u32::from_le_bytes(
                self.buf[self.at + 4..self.at + 8]
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            if count > FRAME_RECORDS {
                self.resync_skip(start, FaultKind::OversizedFrame, 0)?;
                continue;
            }
            let payload_len = count * RECORD_BYTES;
            if !self.want(8 + payload_len + 8)? {
                // The stream ends inside this frame: all of its declared records
                // are lost, along with whatever the trailing bytes held.
                self.record_truncation(Some(count as u64))?;
                return Ok(false);
            }
            let payload_start = self.at + 8;
            let stored = u64::from_le_bytes(
                self.buf[payload_start + payload_len..payload_start + payload_len + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            if frame_checksum(&self.buf[payload_start..payload_start + payload_len]) != stored {
                self.resync_skip(start, FaultKind::ChecksumMismatch, count as u64)?;
                continue;
            }
            // Valid frame: consume it wholesale and decode.
            self.at += 8 + payload_len + 8;
            self.decode_frame_payload(payload_start, payload_len, count, start);
            return Ok(true);
        }
    }

    /// Consumes the damaged region starting at `fault_offset` (whose first byte
    /// has already been ruled out as a frame start) up to the next occurrence of
    /// [`FRAME_MAGIC`] or the end of the stream, recording one [`IngestFault`].
    ///
    /// `declared_records` is the damaged frame's record count when it was
    /// plausible (a failed checksum), 0 otherwise; the fault's `records_lost` is
    /// the max of it and the byte-derived bound.
    fn resync_skip(
        &mut self,
        fault_offset: u64,
        kind: FaultKind,
        declared_records: u64,
    ) -> io::Result<()> {
        // Skip the byte that cannot start a frame, then scan for the magic.
        self.at += 1;
        loop {
            let window = &self.buf[self.at..];
            if let Some(pos) = find_magic(window) {
                self.at += pos;
                self.push_fault(kind, fault_offset, declared_records);
                return Ok(());
            }
            // No magic in the buffer: consume all but the last 3 bytes (a magic
            // may straddle the chunk boundary) and pull more.
            let keep = self.remaining().min(FRAME_MAGIC.len() - 1);
            self.at = self.buf.len() - keep;
            if !self.want(keep + 1)? {
                // Stream ended while resynchronizing: the tail is part of the
                // damaged region.
                self.at = self.buf.len();
                self.push_fault(kind, fault_offset, declared_records);
                self.truncated = true;
                return Ok(());
            }
        }
    }

    /// Records the stream ending inside a frame, consuming the trailing bytes.
    fn record_truncation(&mut self, declared_records: Option<u64>) -> io::Result<()> {
        let fault_offset = self.byte_offset();
        self.at = self.buf.len();
        self.push_fault(
            FaultKind::TruncatedFrame,
            fault_offset,
            declared_records.unwrap_or(0),
        );
        self.truncated = true;
        Ok(())
    }

    /// Appends a fault for the consumed region `[fault_offset, byte_offset())`.
    fn push_fault(&mut self, kind: FaultKind, fault_offset: u64, declared_records: u64) {
        let bytes_skipped = self.byte_offset() - fault_offset;
        let byte_bound = bytes_skipped.div_ceil(RECORD_BYTES as u64);
        self.faults.push(IngestFault {
            kind,
            offset: fault_offset,
            frame_index: self.frames_decoded,
            bytes_skipped,
            records_lost: byte_bound.max(declared_records),
        });
    }
}

/// Position of the first [`FRAME_MAGIC`] in `window`, if any.
fn find_magic(window: &[u8]) -> Option<usize> {
    if window.len() < FRAME_MAGIC.len() {
        return None;
    }
    (0..=window.len() - FRAME_MAGIC.len()).find(|&i| window[i..i + 4] == FRAME_MAGIC)
}

/// Convenience: reads a whole trace (header + records) from any `Read`.
///
/// # Errors
///
/// Same conditions as [`TraceReader::next_record`].
pub fn read_trace<R: Read>(reader: R) -> io::Result<(TraceMeta, Vec<TraceRecord>)> {
    let mut tr = TraceReader::new(crate::source::ReadSource::new(reader))?;
    let meta = tr.meta().clone();
    let records = tr.read_all()?;
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ReadSource, SliceSource};

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            name: "mcf".to_string(),
            cores: 2,
            has_gaps: true,
            instructions_per_miss: vec![33.25, 171.5],
        }
    }

    fn sample_records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                address: (i as u64) * 64 + ((i as u64) << 33),
                gap: (i % 7) as u32,
                core: (i % 2) as u8,
                is_write: i % 3 == 0,
            })
            .collect()
    }

    fn write_sample(records: &[TraceRecord]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &sample_meta()).unwrap();
        for &r in records {
            w.push(r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn record_wire_form_round_trips() {
        for r in sample_records(64) {
            assert_eq!(TraceRecord::decode(&r.encode()), r);
        }
    }

    #[test]
    fn stream_round_trips_bit_identically() {
        // Spans multiple frames: FRAME_RECORDS + a partial tail.
        let records = sample_records(FRAME_RECORDS + 100);
        let bytes = write_sample(&records);
        let (meta, back) = read_trace(&bytes[..]).unwrap();
        assert_eq!(meta, sample_meta());
        assert_eq!(back, records);
        // Re-encoding the decoded stream reproduces the exact bytes.
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for r in back {
            w.push(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), bytes);
    }

    #[test]
    fn reader_handles_tiny_chunks() {
        // 1-byte chunks force every structure to straddle chunk boundaries.
        let records = sample_records(300);
        let bytes = write_sample(&records);
        let mut r = TraceReader::new(SliceSource::with_chunk_size(&bytes, 1)).unwrap();
        assert_eq!(r.read_all().unwrap(), records);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let records = sample_records(10);
        let mut bytes = write_sample(&records);
        let n = bytes.len();
        bytes[n - 20] ^= 0x40; // flip a payload bit in the final frame
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let records = sample_records(10);
        let bytes = write_sample(&records);
        let err = read_trace(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_sample(&sample_records(1));
        bytes[0] = b'X';
        let err = TraceReader::new(ReadSource::new(&bytes[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_yields_no_records() {
        let w = TraceWriter::new(Vec::new(), &sample_meta()).unwrap();
        let bytes = w.finish().unwrap();
        let (meta, records) = read_trace(&bytes[..]).unwrap();
        assert_eq!(meta.cores, 2);
        assert!(records.is_empty());
    }

    #[test]
    fn writer_rejects_inconsistent_meta() {
        let meta = TraceMeta {
            instructions_per_miss: vec![1.0],
            ..sample_meta()
        };
        assert!(TraceWriter::new(Vec::new(), &meta).is_err());
    }

    #[test]
    fn strict_errors_carry_position_context() {
        let records = sample_records(10);
        let mut bytes = write_sample(&records);
        let n = bytes.len();
        bytes[n - 20] ^= 0x40;
        let err = read_trace(&bytes[..]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("at byte"), "no offset in: {msg}");
        assert!(msg.contains("frame"), "no frame index in: {msg}");
    }

    #[test]
    fn strict_rejects_implausible_frame_count_without_buffering() {
        let records = sample_records(10);
        let mut bytes = write_sample(&records);
        // Frame header sits right after the trace header; blow up its count.
        let frame_start = bytes.len() - (8 + 10 * RECORD_BYTES + 8);
        bytes[frame_start + 4..frame_start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("implausible"));
    }

    fn resync_read(bytes: &[u8]) -> (Vec<TraceRecord>, Vec<IngestFault>, bool) {
        let mut r =
            TraceReader::with_mode(SliceSource::with_chunk_size(bytes, 61), DecodeMode::Resync)
                .unwrap();
        let records = r.read_all().unwrap();
        let truncated = r.truncated();
        (records, r.take_faults(), truncated)
    }

    #[test]
    fn resync_skips_a_corrupt_frame_and_recovers_the_rest() {
        let records = sample_records(2 * FRAME_RECORDS + 100);
        let mut bytes = write_sample(&records);
        let frame_len = 8 + FRAME_RECORDS * RECORD_BYTES + 8;
        let header_len = bytes.len() - 2 * frame_len - (8 + 100 * RECORD_BYTES + 8);
        // Flip a payload bit in the middle frame.
        bytes[header_len + frame_len + 8 + 1000] ^= 0x01;

        let (got, faults, truncated) = resync_read(&bytes);
        let mut expect = records[..FRAME_RECORDS].to_vec();
        expect.extend_from_slice(&records[2 * FRAME_RECORDS..]);
        assert_eq!(got, expect);
        assert!(!truncated);
        assert!(!faults.is_empty());
        assert_eq!(faults[0].kind, FaultKind::ChecksumMismatch);
        assert_eq!(faults[0].offset, (header_len + frame_len) as u64);
        assert_eq!(faults[0].frame_index, 1);
        // Conservative bound: at least the frame's records are accounted lost,
        // and the skipped regions cover the damaged frame exactly.
        let lost: u64 = faults.iter().map(|f| f.records_lost).sum();
        assert!(lost >= FRAME_RECORDS as u64, "lost {lost}");
        let skipped: u64 = faults.iter().map(|f| f.bytes_skipped).sum();
        assert_eq!(skipped, frame_len as u64);
    }

    #[test]
    fn resync_skips_garbage_between_frames() {
        let records = sample_records(FRAME_RECORDS + 100);
        let bytes = write_sample(&records);
        let tail_len = 8 + 100 * RECORD_BYTES + 8;
        let junk_at = bytes.len() - tail_len;
        let mut damaged = bytes[..junk_at].to_vec();
        damaged.extend_from_slice(&[b'X'; 37]);
        damaged.extend_from_slice(&bytes[junk_at..]);

        let (got, faults, truncated) = resync_read(&damaged);
        assert_eq!(got, records); // nothing actually lost...
        assert!(!truncated);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::BadFrameMagic);
        assert_eq!(faults[0].bytes_skipped, 37);
        assert!(faults[0].records_lost >= 1); // ...but the bound stays >= 0 loss
    }

    #[test]
    fn resync_flags_truncation_instead_of_erroring() {
        let records = sample_records(FRAME_RECORDS + 100);
        let bytes = write_sample(&records);
        let (got, faults, truncated) = resync_read(&bytes[..bytes.len() - 3]);
        assert_eq!(got, &records[..FRAME_RECORDS]);
        assert!(truncated);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::TruncatedFrame);
        assert!(faults[0].records_lost >= 100, "declared count bounds loss");
    }

    #[test]
    fn resync_survives_an_oversized_count_field() {
        let records = sample_records(FRAME_RECORDS + 100);
        let mut bytes = write_sample(&records);
        let frame_len = 8 + FRAME_RECORDS * RECORD_BYTES + 8;
        let tail_len = 8 + 100 * RECORD_BYTES + 8;
        let header_len = bytes.len() - frame_len - tail_len;
        bytes[header_len + 4..header_len + 8].copy_from_slice(&u32::MAX.to_le_bytes());

        let (got, faults, _) = resync_read(&bytes);
        assert_eq!(got, &records[FRAME_RECORDS..]);
        assert_eq!(faults[0].kind, FaultKind::OversizedFrame);
        let lost: u64 = faults.iter().map(|f| f.records_lost).sum();
        assert!(lost >= FRAME_RECORDS as u64);
    }

    #[test]
    fn strict_mode_decodes_bit_identically_to_resync_on_clean_input() {
        let records = sample_records(FRAME_RECORDS + 100);
        let bytes = write_sample(&records);
        let (strict, ..) = {
            let mut r = TraceReader::new(SliceSource::with_chunk_size(&bytes, 61)).unwrap();
            (r.read_all().unwrap(),)
        };
        let (resync, faults, truncated) = resync_read(&bytes);
        assert_eq!(strict, resync);
        assert!(faults.is_empty());
        assert!(!truncated);
    }
}
