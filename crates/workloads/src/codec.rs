//! Binary trace codec: framed chunks of fixed-width access records.
//!
//! The `impress-trace` frontend exchanges physical-address streams in a simple,
//! self-describing binary format designed for streaming ingestion:
//!
//! ```text
//! header:  "IMPT" | version u16 | flags u16 | cores u8 | name_len u8
//!          | name (name_len bytes, UTF-8)
//!          | instructions_per_miss: cores × f64  (little-endian bit patterns)
//! frame:   "IMPC" | record_count u32 | record_count × 16-byte records | fnv1a64
//! record:  address u64 | gap u32 | core u8 | flags u8 (bit 0 = write) | reserved u16
//! ```
//!
//! All integers are little-endian. Frames are self-delimiting and checksummed, so a
//! reader can stream chunk-by-chunk from a file, a pipe or a socket without knowing
//! the total length in advance, and corruption is detected at frame granularity.
//! Records are exactly [`RECORD_BYTES`] wide so an mmap'd payload can be cast to a
//! record array by readers that want zero-copy access.

use std::io::{self, Read, Write};

use impress_dram::address::PhysicalAddress;

use crate::source::TraceSource;
use crate::trace::MemoryAccess;

/// Magic bytes opening a trace stream.
pub const TRACE_MAGIC: [u8; 4] = *b"IMPT";
/// Magic bytes opening each frame.
pub const FRAME_MAGIC: [u8; 4] = *b"IMPC";
/// Codec version emitted by [`TraceWriter`].
pub const TRACE_VERSION: u16 = 1;
/// Size of one encoded record in bytes.
pub const RECORD_BYTES: usize = 16;
/// Records per frame emitted by [`TraceWriter`] (128 KiB of payload).
pub const FRAME_RECORDS: usize = 8192;

/// Header flag: records carry meaningful inter-arrival gaps.
const FLAG_HAS_GAPS: u16 = 1 << 0;
/// Record flag: the access is a write.
const REC_WRITE: u8 = 1 << 0;

/// Stream-level metadata carried in the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Name of the workload the trace was recorded from.
    pub name: String,
    /// Number of cores whose accesses appear in the stream.
    pub cores: u8,
    /// Whether records carry meaningful inter-arrival gaps (open-loop replay);
    /// when false every `gap` field is zero and replay paces itself.
    pub has_gaps: bool,
    /// Per-core average instructions per LLC miss, so closed-loop replay can
    /// rebuild the same core models the recording run used.
    pub instructions_per_miss: Vec<f64>,
}

/// One trace record: a memory access plus the inter-arrival gap (in DRAM cycles)
/// since the previous record in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Physical byte address of the access.
    pub address: u64,
    /// DRAM cycles since the previous record in the stream (0 when unknown).
    pub gap: u32,
    /// Core that issued the access.
    pub core: u8,
    /// Whether the access is a write.
    pub is_write: bool,
}

impl TraceRecord {
    /// Wraps a [`MemoryAccess`] with an inter-arrival gap.
    pub fn from_access(access: MemoryAccess, gap: u32) -> Self {
        Self {
            address: access.address.as_u64(),
            gap,
            core: access.core,
            is_write: access.is_write,
        }
    }

    /// The access this record describes.
    pub fn to_access(self) -> MemoryAccess {
        MemoryAccess {
            address: PhysicalAddress::new(self.address),
            is_write: self.is_write,
            core: self.core,
        }
    }

    /// Encodes the record into its 16-byte wire form.
    pub fn encode(self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.address.to_le_bytes());
        out[8..12].copy_from_slice(&self.gap.to_le_bytes());
        out[12] = self.core;
        out[13] = if self.is_write { REC_WRITE } else { 0 };
        // out[14..16] reserved, zero.
        out
    }

    /// Decodes a record from its 16-byte wire form.
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> Self {
        Self {
            address: u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            gap: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            core: bytes[12],
            is_write: bytes[13] & REC_WRITE != 0,
        }
    }
}

/// FNV-1a 64-bit hash, the per-frame checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Streaming trace writer: buffers records and emits checksummed frames.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    payload: Vec<u8>,
    records_in_frame: usize,
    records_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the stream header and returns a writer ready for records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer; rejects metadata whose
    /// name exceeds 255 bytes or whose per-core table does not match `cores`.
    pub fn new(mut inner: W, meta: &TraceMeta) -> io::Result<Self> {
        if meta.name.len() > u8::MAX as usize {
            return Err(bad_data("trace name longer than 255 bytes"));
        }
        if meta.instructions_per_miss.len() != meta.cores as usize {
            return Err(bad_data("instructions_per_miss length must equal cores"));
        }
        let mut header = Vec::with_capacity(16 + meta.name.len() + meta.cores as usize * 8);
        header.extend_from_slice(&TRACE_MAGIC);
        header.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        let flags = if meta.has_gaps { FLAG_HAS_GAPS } else { 0 };
        header.extend_from_slice(&flags.to_le_bytes());
        header.push(meta.cores);
        header.push(meta.name.len() as u8);
        header.extend_from_slice(meta.name.as_bytes());
        for ipm in &meta.instructions_per_miss {
            header.extend_from_slice(&ipm.to_bits().to_le_bytes());
        }
        inner.write_all(&header)?;
        Ok(Self {
            inner,
            payload: Vec::with_capacity(FRAME_RECORDS * RECORD_BYTES),
            records_in_frame: 0,
            records_written: 0,
        })
    }

    /// Appends one record, flushing a frame when it fills.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.payload.extend_from_slice(&record.encode());
        self.records_in_frame += 1;
        self.records_written += 1;
        if self.records_in_frame == FRAME_RECORDS {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Total records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.records_in_frame == 0 {
            return Ok(());
        }
        self.inner.write_all(&FRAME_MAGIC)?;
        self.inner
            .write_all(&(self.records_in_frame as u32).to_le_bytes())?;
        self.inner.write_all(&self.payload)?;
        self.inner
            .write_all(&fnv1a64(&self.payload).to_le_bytes())?;
        self.payload.clear();
        self.records_in_frame = 0;
        Ok(())
    }

    /// Flushes the final partial frame and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_frame()?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace reader: pulls chunks from a [`TraceSource`], reassembles
/// frames across chunk boundaries, verifies checksums and yields records.
#[derive(Debug)]
pub struct TraceReader<S: TraceSource> {
    source: S,
    /// Unconsumed bytes carried across chunk boundaries.
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted lazily).
    at: usize,
    meta: TraceMeta,
    /// Decoded records of the current frame, yielded in order.
    frame: Vec<TraceRecord>,
    frame_at: usize,
    exhausted: bool,
}

impl<S: TraceSource> TraceReader<S> {
    /// Reads the stream header from `source` and returns a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic, version or header structure is wrong,
    /// or `UnexpectedEof` if the stream ends mid-header.
    pub fn new(source: S) -> io::Result<Self> {
        let mut reader = Self {
            source,
            buf: Vec::new(),
            at: 0,
            meta: TraceMeta {
                name: String::new(),
                cores: 0,
                has_gaps: false,
                instructions_per_miss: Vec::new(),
            },
            frame: Vec::new(),
            frame_at: 0,
            exhausted: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// Stream metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Yields the next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a corrupt frame (bad magic or checksum) and
    /// `UnexpectedEof` if the stream ends inside a frame.
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        loop {
            if self.frame_at < self.frame.len() {
                let r = self.frame[self.frame_at];
                self.frame_at += 1;
                return Ok(Some(r));
            }
            if !self.read_frame()? {
                return Ok(None);
            }
        }
    }

    /// Reads every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::next_record`].
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Ensures at least `need` unconsumed bytes are buffered; returns false on a
    /// clean end of stream with zero unconsumed bytes.
    fn want(&mut self, need: usize) -> io::Result<bool> {
        while self.buf.len() - self.at < need {
            if self.exhausted {
                if self.buf.len() == self.at {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "trace stream truncated mid-structure",
                ));
            }
            // Compact before growing so long streams don't accumulate dead bytes.
            if self.at > 0 {
                self.buf.drain(..self.at);
                self.at = 0;
            }
            match self.source.next_chunk()? {
                Some(chunk) => self.buf.extend_from_slice(chunk),
                None => self.exhausted = true,
            }
        }
        Ok(true)
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        s
    }

    fn read_header(&mut self) -> io::Result<()> {
        if !self.want(10)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty trace stream",
            ));
        }
        if self.take(4) != TRACE_MAGIC {
            return Err(bad_data("not an impress trace (bad magic)"));
        }
        let version = u16::from_le_bytes(self.take(2).try_into().unwrap());
        if version != TRACE_VERSION {
            return Err(bad_data("unsupported trace version"));
        }
        let flags = u16::from_le_bytes(self.take(2).try_into().unwrap());
        let cores = self.take(1)[0];
        let name_len = self.take(1)[0] as usize;
        if !self.want(name_len + cores as usize * 8)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "trace header truncated",
            ));
        }
        let name = String::from_utf8(self.take(name_len).to_vec())
            .map_err(|_| bad_data("trace name is not UTF-8"))?;
        let mut instructions_per_miss = Vec::with_capacity(cores as usize);
        for _ in 0..cores {
            let bits = u64::from_le_bytes(self.take(8).try_into().unwrap());
            instructions_per_miss.push(f64::from_bits(bits));
        }
        self.meta = TraceMeta {
            name,
            cores,
            has_gaps: flags & FLAG_HAS_GAPS != 0,
            instructions_per_miss,
        };
        Ok(())
    }

    /// Reads and verifies the next frame; returns false at a clean end of stream.
    fn read_frame(&mut self) -> io::Result<bool> {
        if !self.want(8)? {
            return Ok(false);
        }
        if self.take(4) != FRAME_MAGIC {
            return Err(bad_data("corrupt trace frame (bad magic)"));
        }
        let count = u32::from_le_bytes(self.take(4).try_into().unwrap()) as usize;
        let payload_len = count * RECORD_BYTES;
        if !self.want(payload_len + 8)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "trace frame truncated",
            ));
        }
        let payload_start = self.at;
        self.at += payload_len;
        let stored = u64::from_le_bytes(self.take(8).try_into().unwrap());
        let payload = &self.buf[payload_start..payload_start + payload_len];
        if fnv1a64(payload) != stored {
            return Err(bad_data("trace frame checksum mismatch"));
        }
        self.frame.clear();
        self.frame_at = 0;
        self.frame.reserve(count);
        for i in 0..count {
            let bytes: &[u8; RECORD_BYTES] = payload[i * RECORD_BYTES..(i + 1) * RECORD_BYTES]
                .try_into()
                .unwrap();
            self.frame.push(TraceRecord::decode(bytes));
        }
        Ok(true)
    }
}

/// Convenience: reads a whole trace (header + records) from any `Read`.
///
/// # Errors
///
/// Same conditions as [`TraceReader::next_record`].
pub fn read_trace<R: Read>(reader: R) -> io::Result<(TraceMeta, Vec<TraceRecord>)> {
    let mut tr = TraceReader::new(crate::source::ReadSource::new(reader))?;
    let meta = tr.meta().clone();
    let records = tr.read_all()?;
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ReadSource, SliceSource};

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            name: "mcf".to_string(),
            cores: 2,
            has_gaps: true,
            instructions_per_miss: vec![33.25, 171.5],
        }
    }

    fn sample_records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                address: (i as u64) * 64 + ((i as u64) << 33),
                gap: (i % 7) as u32,
                core: (i % 2) as u8,
                is_write: i % 3 == 0,
            })
            .collect()
    }

    fn write_sample(records: &[TraceRecord]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &sample_meta()).unwrap();
        for &r in records {
            w.push(r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn record_wire_form_round_trips() {
        for r in sample_records(64) {
            assert_eq!(TraceRecord::decode(&r.encode()), r);
        }
    }

    #[test]
    fn stream_round_trips_bit_identically() {
        // Spans multiple frames: FRAME_RECORDS + a partial tail.
        let records = sample_records(FRAME_RECORDS + 100);
        let bytes = write_sample(&records);
        let (meta, back) = read_trace(&bytes[..]).unwrap();
        assert_eq!(meta, sample_meta());
        assert_eq!(back, records);
        // Re-encoding the decoded stream reproduces the exact bytes.
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for r in back {
            w.push(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), bytes);
    }

    #[test]
    fn reader_handles_tiny_chunks() {
        // 1-byte chunks force every structure to straddle chunk boundaries.
        let records = sample_records(300);
        let bytes = write_sample(&records);
        let mut r = TraceReader::new(SliceSource::with_chunk_size(&bytes, 1)).unwrap();
        assert_eq!(r.read_all().unwrap(), records);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let records = sample_records(10);
        let mut bytes = write_sample(&records);
        let n = bytes.len();
        bytes[n - 20] ^= 0x40; // flip a payload bit in the final frame
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let records = sample_records(10);
        let bytes = write_sample(&records);
        let err = read_trace(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_sample(&sample_records(1));
        bytes[0] = b'X';
        let err = TraceReader::new(ReadSource::new(&bytes[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_yields_no_records() {
        let w = TraceWriter::new(Vec::new(), &sample_meta()).unwrap();
        let bytes = w.finish().unwrap();
        let (meta, records) = read_trace(&bytes[..]).unwrap();
        assert_eq!(meta.cores, 2);
        assert!(records.is_empty());
    }

    #[test]
    fn writer_rejects_inconsistent_meta() {
        let meta = TraceMeta {
            instructions_per_miss: vec![1.0],
            ..sample_meta()
        };
        assert!(TraceWriter::new(Vec::new(), &meta).is_err());
    }
}
