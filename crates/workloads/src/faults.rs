//! Deterministic fault injection for the trace-ingestion path.
//!
//! Degraded-mode behaviour is only trustworthy if every degraded path is
//! reproducibly testable. This module wraps any [`TraceSource`] in a
//! [`FaultInjector`] that applies a [`FaultPlan`] — a seeded, fully explicit
//! list of byte- and frame-level faults — while the stream is being served:
//!
//! * **Bit flips** ([`FaultOp::FlipBit`]) — single-bit payload/header damage at
//!   an absolute byte offset.
//! * **Truncation / mid-frame EOF** ([`FaultOp::Truncate`]) — the stream ends
//!   early, possibly inside a frame.
//! * **Frame duplication** ([`FaultOp::RepeatRange`]) — a byte range (typically
//!   one frame) is emitted twice back to back.
//! * **Frame reordering** ([`FaultOp::DeferRange`]) — a byte range is withheld
//!   and re-emitted later, so a frame arrives after its successors.
//! * **Stalls** ([`FaultOp::Stall`]) — the source yields empty chunks before
//!   making progress, simulating a slow or bursty producer.
//!
//! [`FaultPlan::seeded`] derives a plan from a seed and a [`FrameMap`] of the
//! clean bytes, and [`FaultPlan::expected`] computes an oracle
//! ([`ExpectedImpact`]) that tests use to check the resync decoder's ledger
//! against ground truth: every record the plan damages must be covered by the
//! ledger's conservative `records_lost` bound.
//!
//! A second family of faults targets the *network* between a `trace send`
//! client and a socket daemon rather than the byte stream itself: a
//! [`ConnFaultPlan`] of [`ConnFaultOp`]s (disconnects, stalls, short writes,
//! duplicate delivery) drives a [`FaultTransport`] wrapping the real
//! [`WireLink`](crate::transport::WireLink). Because the transport protocol
//! dedups by offset and resumes from the server's acked position, a retrying
//! client must deliver the byte-identical stream despite any such plan; for a
//! non-retrying client, [`ConnFaultPlan::expected_no_retry`] reduces the first
//! connection cut to an equivalent [`FaultOp::Truncate`] oracle.
//!
//! A third family targets the *multi-tenant* daemon: a [`ChaosPlan`] assigns
//! each of N concurrent producers a [`ChaosRole`] (clean, flaky, slow-loris,
//! or hostile), and the scripted misbehaving producers
//! ([`run_hostile_producer`], [`run_slow_loris`], [`connect_flood`]) let
//! tests drive a daemon with connect floods, protocol violations, and
//! no-progress stalls while asserting that well-behaved tenants are
//! unaffected.

use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codec::{FRAME_MAGIC, FRAME_RECORDS, RECORD_BYTES, TRACE_MAGIC};
use crate::source::{TraceSource, TransportEvent};
use crate::transport::{ClientLink, Endpoint, Handshake, ServerReply, WireLink, DATA_HEADER};

/// Byte layout of one frame region inside an encoded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Absolute offset of the frame's `IMPC` magic.
    pub offset: u64,
    /// Total encoded length (header + payload + checksum).
    pub len: u64,
    /// Declared record count.
    pub records: u32,
}

impl FrameSpan {
    /// Absolute offset one past the frame's last byte.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Frame-boundary map of an encoded trace, scanned from clean bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMap {
    /// Length of the stream header (everything before the first frame).
    pub header_len: u64,
    /// Frames in stream order.
    pub frames: Vec<FrameSpan>,
}

impl FrameMap {
    /// Scans a well-formed encoded trace for its frame boundaries.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the bytes are not a structurally valid trace
    /// (checksums are *not* verified — this is a layout scan, not a decode).
    pub fn scan(bytes: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() < 10 || bytes[..4] != TRACE_MAGIC {
            return Err(bad("not an impress trace"));
        }
        let cores = bytes[8] as usize;
        let name_len = bytes[9] as usize;
        let header_len = 10 + name_len + cores * 8;
        if bytes.len() < header_len {
            return Err(bad("trace header truncated"));
        }
        let mut frames = Vec::new();
        let mut at = header_len;
        while at < bytes.len() {
            if bytes.len() - at < 8 || bytes[at..at + 4] != FRAME_MAGIC {
                return Err(bad("frame boundary scan lost sync"));
            }
            let records = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
            if records as usize > FRAME_RECORDS {
                return Err(bad("implausible frame record count"));
            }
            let len = 8 + records as usize * RECORD_BYTES + 8;
            if bytes.len() - at < len {
                return Err(bad("frame extends past end of stream"));
            }
            frames.push(FrameSpan {
                offset: at as u64,
                len: len as u64,
                records,
            });
            at += len;
        }
        Ok(Self {
            header_len: header_len as u64,
            frames,
        })
    }

    /// Total records declared across all frames.
    pub fn total_records(&self) -> u64 {
        self.frames.iter().map(|f| f.records as u64).sum()
    }
}

/// One injected fault, positioned in *input-stream* byte coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Flips bit `bit` (0–7) of the byte at absolute `offset`.
    FlipBit {
        /// Absolute byte offset in the clean stream.
        offset: u64,
        /// Bit index within the byte.
        bit: u8,
    },
    /// Ends the stream after `at` bytes have been emitted.
    Truncate {
        /// Absolute cut position in the clean stream.
        at: u64,
    },
    /// Emits the byte range `[start, end)` a second time immediately after its
    /// first emission (frame duplication when the range is one frame).
    RepeatRange {
        /// Range start (inclusive).
        start: u64,
        /// Range end (exclusive).
        end: u64,
    },
    /// Withholds `[start, end)` and emits it only once the input position
    /// reaches `until` (frame reordering when both are frame-aligned).
    DeferRange {
        /// Range start (inclusive).
        start: u64,
        /// Range end (exclusive).
        end: u64,
        /// Input position after which the captured range is released.
        until: u64,
    },
    /// Yields `polls` empty chunks once the input position reaches `at`.
    Stall {
        /// Position at which the stall begins.
        at: u64,
        /// Number of empty-chunk polls before progress resumes.
        polls: u32,
    },
}

/// A deterministic, seed-reproducible list of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Faults to apply, in the order they were planned.
    pub ops: Vec<FaultOp>,
}

/// Ground-truth oracle for a seeded plan over a known [`FrameMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedImpact {
    /// Records a clean decode of the faulted stream would yield if no frame
    /// were damaged: original records, plus duplicated frames' records, minus
    /// frames removed entirely by truncation.
    pub baseline_records: u64,
    /// Records in emitted frame copies left fully intact — the resync decoder
    /// must recover exactly these.
    pub intact_records: u64,
    /// Records in emitted frame copies damaged by flips or a mid-frame cut —
    /// the ledger's `records_lost` must be at least this.
    pub damaged_records: u64,
    /// Records lost to a cut so early in a frame (inside its 8-byte header)
    /// that the declared count never reaches the decoder: only the `truncated`
    /// flag can report them, not `records_lost`.
    pub unaccounted_records: u64,
    /// Whether the plan cuts the stream inside a frame (the decoder must set
    /// its `truncated` flag; a frame-aligned cut is undetectable in-band).
    pub mid_frame_cut: bool,
}

impl FaultPlan {
    /// Derives a deterministic plan from `seed` over the frames of `map`.
    ///
    /// Every seed yields at least one fault. Range ops and truncation are kept
    /// mutually exclusive and frame-aligned so [`FaultPlan::expected`] can
    /// compute an exact oracle; bit flips land inside frame payloads.
    pub fn seeded(seed: u64, map: &FrameMap) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        let n = map.frames.len();
        if n == 0 {
            return Self { ops };
        }
        // Structural fault: duplicate or reorder one frame (not both, so the
        // oracle stays a simple per-frame-copy count).
        match rng.gen_range(0u32..4) {
            0 if n >= 1 => {
                let f = &map.frames[rng.gen_range(0..n)];
                ops.push(FaultOp::RepeatRange {
                    start: f.offset,
                    end: f.end(),
                });
            }
            1 if n >= 2 => {
                let i = rng.gen_range(0..n - 1);
                let f = &map.frames[i];
                ops.push(FaultOp::DeferRange {
                    start: f.offset,
                    end: f.end(),
                    until: map.frames[i + 1].end(),
                });
            }
            _ => {}
        }
        // Payload damage: flip bits in up to two distinct frames.
        for _ in 0..rng.gen_range(0u32..3) {
            let f = &map.frames[rng.gen_range(0..n)];
            let offset = rng.gen_range(f.offset..f.end());
            ops.push(FaultOp::FlipBit {
                offset,
                bit: rng.gen_range(0u64..8) as u8,
            });
        }
        // Stall somewhere in the middle.
        if rng.gen_bool(0.5) {
            let last = map.frames[n - 1].end();
            ops.push(FaultOp::Stall {
                at: rng.gen_range(0..last),
                polls: rng.gen_range(1u32..4),
            });
        }
        // Truncation (only when no range op is in play, so positions in input
        // coordinates equal positions in output coordinates).
        let structural = ops
            .iter()
            .any(|op| matches!(op, FaultOp::RepeatRange { .. } | FaultOp::DeferRange { .. }));
        if !structural && rng.gen_bool(0.5) {
            let f = &map.frames[rng.gen_range(0..n)];
            // Cut strictly inside the frame: mid-frame EOF.
            let at = rng.gen_range(f.offset + 1..f.end());
            ops.push(FaultOp::Truncate { at });
        }
        if ops.is_empty() {
            // Guarantee at least one fault per seed.
            let f = &map.frames[rng.gen_range(0..n)];
            ops.push(FaultOp::FlipBit {
                offset: rng.gen_range(f.offset..f.end()),
                bit: rng.gen_range(0u64..8) as u8,
            });
        }
        Self { ops }
    }

    /// Computes the ground-truth impact of this plan on the frames of `map`.
    ///
    /// Only defined for plans whose range ops are frame-aligned and that do not
    /// combine range ops with truncation (what [`FaultPlan::seeded`] emits);
    /// returns `None` for exotic hand-built plans.
    pub fn expected(&self, map: &FrameMap) -> Option<ExpectedImpact> {
        let mut copies: Vec<u64> = vec![1; map.frames.len()];
        let mut damaged: Vec<bool> = vec![false; map.frames.len()];
        let mut cut: Option<u64> = None;
        let mut structural = false;
        let frame_at = |offset: u64, end: u64| {
            map.frames
                .iter()
                .position(|f| f.offset == offset && f.end() == end)
        };
        for op in &self.ops {
            match *op {
                FaultOp::FlipBit { offset, .. } => {
                    let hit = map
                        .frames
                        .iter()
                        .position(|f| offset >= f.offset && offset < f.end())?;
                    damaged[hit] = true;
                }
                FaultOp::Truncate { at } => {
                    if cut.replace(at).is_some() {
                        return None; // one cut max
                    }
                }
                FaultOp::RepeatRange { start, end } => {
                    copies[frame_at(start, end)?] += 1; // emitted twice in total
                    structural = true;
                }
                FaultOp::DeferRange { start, end, until } => {
                    frame_at(start, end)?;
                    if !map.frames.iter().any(|f| f.end() == until) {
                        return None;
                    }
                    structural = true;
                }
                FaultOp::Stall { .. } => {}
            }
        }
        if structural && cut.is_some() {
            return None;
        }
        let mut baseline = 0u64;
        let mut intact = 0u64;
        let mut damaged_total = 0u64;
        let mut unaccounted = 0u64;
        let mut mid_frame_cut = false;
        for (i, f) in map.frames.iter().enumerate() {
            let (mut copies_present, mut frame_cut, mut count_lost) = (copies[i], false, false);
            if let Some(at) = cut {
                if at <= f.offset {
                    copies_present = 0; // frame removed entirely
                } else if at < f.end() {
                    frame_cut = true;
                    mid_frame_cut = true;
                    // A cut inside the 8-byte frame header destroys the
                    // declared count, so the decoder cannot bound the loss.
                    count_lost = at < f.offset + 8;
                }
            }
            let recs = f.records as u64 * copies_present;
            baseline += recs;
            if count_lost {
                unaccounted += recs;
            } else if damaged[i] || frame_cut {
                damaged_total += recs;
            } else {
                intact += recs;
            }
        }
        Some(ExpectedImpact {
            baseline_records: baseline,
            intact_records: intact,
            damaged_records: damaged_total,
            unaccounted_records: unaccounted,
            mid_frame_cut,
        })
    }

    /// True when the plan ends the stream early.
    pub fn truncates(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, FaultOp::Truncate { .. }))
    }
}

/// Pending re-emission of a captured byte range.
#[derive(Debug)]
struct Capture {
    bytes: Vec<u8>,
    start: u64,
    end: u64,
    emit_at: u64,
    /// Whether the range is also emitted inline as it streams past
    /// (duplication) or withheld until `emit_at` (reordering).
    inline: bool,
    released: bool,
}

/// A [`TraceSource`] adapter applying a [`FaultPlan`] to the wrapped stream.
///
/// All faults are applied deterministically by absolute input byte position, so
/// the corrupted output is identical regardless of how the inner source chunks
/// its bytes.
#[derive(Debug)]
pub struct FaultInjector<S: TraceSource> {
    inner: S,
    pos: u64,
    flips: Vec<(u64, u8)>,
    truncate_at: Option<u64>,
    stalls: Vec<(u64, u32)>,
    captures: Vec<Capture>,
    out: Vec<u8>,
    done: bool,
}

impl<S: TraceSource> FaultInjector<S> {
    /// Wraps `inner`, applying `plan` as bytes stream through.
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        let mut flips = Vec::new();
        let mut truncate_at = None;
        let mut stalls = Vec::new();
        let mut captures = Vec::new();
        for op in &plan.ops {
            match *op {
                FaultOp::FlipBit { offset, bit } => flips.push((offset, bit & 7)),
                FaultOp::Truncate { at } => {
                    truncate_at = Some(truncate_at.map_or(at, |t: u64| t.min(at)));
                }
                FaultOp::Stall { at, polls } => stalls.push((at, polls)),
                FaultOp::RepeatRange { start, end } => captures.push(Capture {
                    bytes: Vec::new(),
                    start,
                    end,
                    emit_at: end,
                    inline: true,
                    released: false,
                }),
                FaultOp::DeferRange { start, end, until } => captures.push(Capture {
                    bytes: Vec::new(),
                    start,
                    end,
                    emit_at: until.max(end),
                    inline: false,
                    released: false,
                }),
            }
        }
        flips.sort_unstable();
        stalls.sort_unstable();
        captures.sort_by_key(|c| c.emit_at);
        Self {
            inner,
            pos: 0,
            flips,
            truncate_at,
            stalls,
            captures,
            out: Vec::new(),
            done: false,
        }
    }

    /// Transforms one input chunk into `self.out`.
    fn transform(&mut self, chunk: &[u8]) {
        let mut chunk = chunk;
        if let Some(t) = self.truncate_at {
            let left = t.saturating_sub(self.pos) as usize;
            if chunk.len() >= left {
                chunk = &chunk[..left];
                self.done = true;
            }
        }
        let start = self.pos;
        let end = start + chunk.len() as u64;
        // Apply flips into a scratch copy only when one lands in this chunk.
        let mut scratch;
        let bytes: &[u8] = if self.flips.iter().any(|&(o, _)| o >= start && o < end) {
            scratch = chunk.to_vec();
            for &(o, bit) in &self.flips {
                if o >= start && o < end {
                    scratch[(o - start) as usize] ^= 1 << bit;
                }
            }
            &scratch[..]
        } else {
            chunk
        };
        // Route bytes into capture buffers (a capture's range always ends at or
        // before its emit position, so collecting up front is safe).
        for c in &mut self.captures {
            let lo = c.start.max(start).min(end);
            let hi = c.end.max(start).min(end);
            if lo < hi {
                c.bytes
                    .extend_from_slice(&bytes[(lo - start) as usize..(hi - start) as usize]);
            }
        }
        // Emit in segments split at capture emit positions, so a deferred range
        // re-enters the stream at its exact byte position even when that
        // position falls inside a chunk.
        while self.pos < end {
            let mut seg_end = end;
            for c in &self.captures {
                if !c.released && c.emit_at > self.pos && c.emit_at < seg_end {
                    seg_end = c.emit_at;
                }
            }
            let (seg_lo, seg_hi) = ((self.pos - start) as usize, (seg_end - start) as usize);
            for (i, &b) in bytes[seg_lo..seg_hi].iter().enumerate() {
                let at = start + (seg_lo + i) as u64;
                let suppressed = self
                    .captures
                    .iter()
                    .any(|c| !c.inline && at >= c.start && at < c.end);
                if !suppressed {
                    self.out.push(b);
                }
            }
            self.pos = seg_end;
            self.release_captures();
        }
        self.pos = end;
        self.release_captures();
    }

    /// Appends any captures whose emit position has been reached.
    fn release_captures(&mut self) {
        for i in 0..self.captures.len() {
            if !self.captures[i].released
                && self.pos >= self.captures[i].emit_at
                && self.captures[i].bytes.len() as u64
                    == self.captures[i].end - self.captures[i].start
            {
                self.captures[i].released = true;
                let bytes = std::mem::take(&mut self.captures[i].bytes);
                self.out.extend_from_slice(&bytes);
            }
        }
    }
}

impl<S: TraceSource> TraceSource for FaultInjector<S> {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        self.out.clear();
        // Serve a pending stall with an empty (but not end-of-stream) chunk.
        if let Some(s) = self.stalls.iter_mut().find(|s| s.0 <= self.pos && s.1 > 0) {
            s.1 -= 1;
            return Ok(Some(&[]));
        }
        if self.done {
            return Ok(None);
        }
        match self.inner.next_chunk()? {
            Some(chunk) => {
                // Borrow dance: copy out of the inner borrow before self-mutation.
                let owned = chunk.to_vec();
                self.transform(&owned);
            }
            None => {
                self.done = true;
                // End of stream releases any still-pending full captures.
                self.release_captures();
            }
        }
        if self.out.is_empty() && self.done {
            return Ok(None);
        }
        Ok(Some(&self.out))
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        self.inner.take_transport_events()
    }
}

/// Applies `plan` to an in-memory trace, returning the corrupted bytes.
///
/// Convenience wrapper running a [`FaultInjector`] over a
/// [`SliceSource`](crate::source::SliceSource) — the exact code path the
/// streaming adapter uses, so tests and CLI tooling corrupt identically.
///
/// # Errors
///
/// Propagates I/O errors from the source (none for in-memory input).
pub fn apply_plan(bytes: &[u8], plan: &FaultPlan) -> io::Result<Vec<u8>> {
    let mut injector = FaultInjector::new(crate::source::SliceSource::new(bytes), plan);
    let mut out = Vec::with_capacity(bytes.len());
    while let Some(chunk) = injector.next_chunk()? {
        out.extend_from_slice(chunk);
    }
    Ok(out)
}

/// One injected connection-level fault, positioned in *payload* byte
/// coordinates (absolute offsets into the trace stream being sent, not wire
/// bytes). Each op fires at most once — on the first DATA frame whose payload
/// range covers `at` — and the fired state persists across reconnects, so a
/// retrying client faces each fault exactly once per plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFaultOp {
    /// Drops the connection before the covering frame is sent.
    Disconnect {
        /// Payload offset at which the connection dies.
        at: u64,
    },
    /// Sleeps `millis` before sending the covering frame (the connection
    /// survives; the server sees a quiet producer).
    StallConn {
        /// Payload offset at which the stall occurs.
        at: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Writes only the first `keep` wire bytes of the covering frame, then
    /// drops the connection — the server discards the incomplete frame.
    ShortWrite {
        /// Payload offset of the victim frame.
        at: u64,
        /// Wire bytes to emit before cutting (clamped below the frame length).
        keep: u32,
    },
    /// Sends the covering frame twice back to back; the server's
    /// dedup-by-offset must drop the second copy.
    DuplicateTail {
        /// Payload offset of the duplicated frame.
        at: u64,
    },
}

impl ConnFaultOp {
    /// Payload offset at which this op fires.
    pub fn at(&self) -> u64 {
        match *self {
            ConnFaultOp::Disconnect { at }
            | ConnFaultOp::StallConn { at, .. }
            | ConnFaultOp::ShortWrite { at, .. }
            | ConnFaultOp::DuplicateTail { at } => at,
        }
    }

    /// True when the op severs the connection (disconnect or short write).
    pub fn cuts(&self) -> bool {
        matches!(
            self,
            ConnFaultOp::Disconnect { .. } | ConnFaultOp::ShortWrite { .. }
        )
    }
}

/// A deterministic, seed-reproducible list of connection faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnFaultPlan {
    /// Connection faults, in the order they were planned.
    pub ops: Vec<ConnFaultOp>,
}

impl ConnFaultPlan {
    /// Derives a deterministic plan from `seed` for a stream of `payload_len`
    /// bytes. Every seed yields at least one op; cut positions land past the
    /// first kilobyte (when the stream allows) so the trace header normally
    /// survives, and stalls stay short enough for test-scale idle budgets.
    pub fn seeded(seed: u64, payload_len: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lo = 1024.min(payload_len.saturating_sub(1)).max(1);
        let hi = payload_len.max(lo + 1);
        let mut ops = Vec::new();
        if rng.gen_bool(0.6) {
            ops.push(ConnFaultOp::DuplicateTail {
                at: rng.gen_range(lo..hi),
            });
        }
        if rng.gen_bool(0.4) {
            ops.push(ConnFaultOp::StallConn {
                at: rng.gen_range(lo..hi),
                millis: rng.gen_range(1..25),
            });
        }
        for _ in 0..rng.gen_range(0u32..3) {
            let at = rng.gen_range(lo..hi);
            if rng.gen_bool(0.5) {
                ops.push(ConnFaultOp::Disconnect { at });
            } else {
                ops.push(ConnFaultOp::ShortWrite {
                    at,
                    keep: rng.gen_range(1..64),
                });
            }
        }
        if ops.is_empty() {
            ops.push(ConnFaultOp::Disconnect {
                at: rng.gen_range(lo..hi),
            });
        }
        Self { ops }
    }

    /// Payload offset of the earliest connection cut, if any op severs the
    /// stream.
    pub fn first_cut(&self) -> Option<u64> {
        self.ops
            .iter()
            .filter(|op| op.cuts())
            .map(|op| op.at())
            .min()
    }

    /// Exact byte prefix a *non-retrying* client delivers when the sender
    /// chunks the stream into `data_bytes`-sized frames from offset zero: the
    /// frame covering the first cut is never committed, so delivery stops at
    /// the preceding frame boundary. `None` means the plan never cuts and the
    /// whole stream arrives.
    pub fn delivered_prefix(&self, data_bytes: usize) -> Option<u64> {
        self.first_cut()
            .map(|cut| cut / data_bytes as u64 * data_bytes as u64)
    }

    /// Ground-truth decode impact for a non-retrying client: the first cut is
    /// equivalent to truncating the trace at the delivered-prefix boundary,
    /// so the on-disk truncation oracle applies verbatim. Without a cut the
    /// full stream arrives (dedup absorbs duplicates; stalls are invisible).
    pub fn expected_no_retry(&self, map: &FrameMap, data_bytes: usize) -> Option<ExpectedImpact> {
        let plan = match self.delivered_prefix(data_bytes) {
            Some(at) => FaultPlan {
                ops: vec![FaultOp::Truncate { at }],
            },
            None => FaultPlan::default(),
        };
        plan.expected(map)
    }
}

/// Fired-state for a [`ConnFaultPlan`], shared across every connection a
/// retrying client dials so each op fires exactly once per plan.
#[derive(Debug)]
pub struct ConnFaultState {
    ops: Vec<(ConnFaultOp, bool)>,
}

impl ConnFaultState {
    /// Builds fresh (nothing fired) state for `plan`.
    pub fn new(plan: &ConnFaultPlan) -> Self {
        Self {
            ops: plan.ops.iter().map(|&op| (op, false)).collect(),
        }
    }

    /// Builds shared state suitable for handing to every [`FaultTransport`]
    /// dialed over the plan's lifetime.
    pub fn shared(plan: &ConnFaultPlan) -> Arc<Mutex<Self>> {
        Arc::new(Mutex::new(Self::new(plan)))
    }

    /// True once every planned op has fired.
    pub fn all_fired(&self) -> bool {
        self.ops.iter().all(|&(_, fired)| fired)
    }

    /// Number of cut ops that have fired so far (each costs one session).
    pub fn cuts_fired(&self) -> usize {
        self.ops
            .iter()
            .filter(|&&(op, fired)| fired && op.cuts())
            .count()
    }
}

/// What `FaultTransport::send_data` decided to do with the current frame.
enum CutAction {
    None,
    Disconnect,
    Short(u32),
}

/// A [`ClientLink`] wrapper injecting a [`ConnFaultPlan`] into a live
/// [`WireLink`]. Ops fire when the DATA frame covering their payload offset is
/// about to be sent; once a cut fires the wrapper reports the connection dead
/// until the client dials a fresh transport (sharing the same
/// [`ConnFaultState`], so already-fired ops stay spent).
#[derive(Debug)]
pub struct FaultTransport {
    inner: WireLink,
    state: Arc<Mutex<ConnFaultState>>,
    dead: bool,
}

impl FaultTransport {
    /// Wraps `inner`, injecting faults from the shared `state`.
    pub fn new(inner: WireLink, state: Arc<Mutex<ConnFaultState>>) -> Self {
        Self {
            inner,
            state,
            dead: false,
        }
    }

    fn dead_err() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected fault severed the connection",
        )
    }

    /// Decides stall/cut/duplicate actions for the frame `[offset,
    /// offset+len)`, marking chosen ops fired. Ops are considered in payload
    /// order; everything after a chosen cut is left unfired so it can fire in
    /// the next session after the client resumes.
    fn plan_frame(&mut self, offset: u64, len: u64) -> (u64, CutAction, bool) {
        let mut st = self.state.lock().expect("fault state poisoned");
        let mut idx: Vec<usize> = (0..st.ops.len())
            .filter(|&i| {
                let (op, fired) = st.ops[i];
                !fired && op.at() >= offset && op.at() < offset + len
            })
            .collect();
        idx.sort_by_key(|&i| st.ops[i].0.at());
        let mut stall_ms = 0u64;
        let mut cut = CutAction::None;
        let mut duplicate = false;
        for i in idx {
            match st.ops[i].0 {
                ConnFaultOp::StallConn { millis, .. } => {
                    st.ops[i].1 = true;
                    stall_ms += millis;
                }
                ConnFaultOp::DuplicateTail { .. } => {
                    st.ops[i].1 = true;
                    duplicate = true;
                }
                ConnFaultOp::Disconnect { .. } => {
                    st.ops[i].1 = true;
                    cut = CutAction::Disconnect;
                    break;
                }
                ConnFaultOp::ShortWrite { keep, .. } => {
                    st.ops[i].1 = true;
                    cut = CutAction::Short(keep);
                    break;
                }
            }
        }
        (stall_ms, cut, duplicate)
    }
}

impl ClientLink for FaultTransport {
    fn handshake(
        &mut self,
        start_offset: u64,
        tenant: u64,
        timeout: Duration,
    ) -> io::Result<Handshake> {
        if self.dead {
            return Err(Self::dead_err());
        }
        self.inner.handshake(start_offset, tenant, timeout)
    }

    fn send_data(&mut self, offset: u64, payload: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        let (stall_ms, cut, duplicate) = self.plan_frame(offset, payload.len() as u64);
        if stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(stall_ms));
        }
        match cut {
            CutAction::Disconnect => {
                self.dead = true;
                // Sever without resetting: frames written before the cut
                // must still reach the server, or the delivered-prefix
                // oracle would be racy instead of exact.
                self.inner.sever();
                Err(Self::dead_err())
            }
            CutAction::Short(keep) => {
                self.dead = true;
                // Keep strictly less than the full frame so the server never
                // commits the victim — the delivered-prefix oracle depends on
                // the cut frame being discarded.
                let keep = (keep as usize).min(DATA_HEADER + payload.len() - 1);
                self.inner.send_data_prefix(offset, payload, keep)
            }
            CutAction::None => {
                self.inner.send_data(offset, payload)?;
                if duplicate {
                    self.inner.send_data(offset, payload)?;
                }
                Ok(())
            }
        }
    }

    fn send_heartbeat(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        self.inner.send_heartbeat()
    }

    fn send_fin(&mut self, total: u64) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        self.inner.send_fin(total)
    }

    fn recv_reply(&mut self, wait: Option<Duration>) -> io::Result<Option<ServerReply>> {
        if self.dead {
            return Err(Self::dead_err());
        }
        self.inner.recv_reply(wait)
    }
}

/// Role a producer plays in a multi-client chaos plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosRole {
    /// Streams its payload cleanly with retry enabled.
    Clean,
    /// Streams through a seeded [`ConnFaultPlan`] (disconnects, stalls,
    /// short writes, duplicate delivery) with retry — flaky but honest, so
    /// its bytes must still arrive intact.
    Flaky {
        /// Seed for [`ConnFaultPlan::seeded`].
        seed: u64,
    },
    /// Opens sessions that start a DATA frame and never finish it, holding
    /// the connection without progress until the server stall-evicts it.
    SlowLoris,
    /// Violates the protocol (offset-gap DATA frames) on every session until
    /// the server quarantines the tenant.
    Hostile {
        /// Seed controlling the violation gap sizes.
        seed: u64,
    },
}

/// A deterministic multi-client chaos plan: one [`ChaosRole`] per concurrent
/// producer — the one-hostile-among-N isolation scenario. Seeded plans mix
/// clean and flaky producers around exactly one hostile client; slow-loris
/// roles are assigned by hand because their eviction time is the server's
/// stall budget, which a test wants to pick explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Role per producer, in spawn order.
    pub roles: Vec<ChaosRole>,
}

impl ChaosPlan {
    /// Derives a deterministic plan for `clients` producers: with two or
    /// more clients, exactly one is hostile and at least one stays strictly
    /// clean, the rest splitting between clean and flaky by seed. A single
    /// client is always clean.
    pub fn seeded(seed: u64, clients: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut roles = vec![ChaosRole::Clean; clients];
        if clients >= 2 {
            let hostile = rng.gen_range(0..clients);
            for (i, role) in roles.iter_mut().enumerate() {
                if i == hostile {
                    *role = ChaosRole::Hostile {
                        seed: rng.gen_range(0..u64::MAX),
                    };
                } else if rng.gen_bool(0.5) {
                    *role = ChaosRole::Flaky {
                        seed: rng.gen_range(0..u64::MAX),
                    };
                }
            }
            if !roles.contains(&ChaosRole::Clean) {
                roles[(hostile + 1) % clients] = ChaosRole::Clean;
            }
        }
        Self { roles }
    }

    /// Number of hostile roles in the plan.
    pub fn hostiles(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| matches!(r, ChaosRole::Hostile { .. }))
            .count()
    }
}

/// What a scripted misbehaving producer ([`run_hostile_producer`],
/// [`run_slow_loris`]) observed from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosOutcome {
    /// Tenant token the server assigned (0 if no session was ever admitted).
    pub tenant: u64,
    /// Sessions the server admitted before banning the tenant or the
    /// session budget ran out.
    pub sessions: u64,
    /// Whether a reconnect was refused permanently (quarantined reply).
    pub quarantined: bool,
    /// Clean payload bytes believed delivered before hostilities began
    /// (hostile producers only; always 0 for a slow loris).
    pub delivered: u64,
}

/// Reads replies until the server severs the connection or `budget` elapses.
fn wait_for_cut(link: &mut WireLink, budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        match link.recv_reply(Some(Duration::from_millis(20))) {
            Ok(Some(_)) => {}
            Ok(None) if Instant::now() >= deadline => return,
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

/// Drives one hostile producer against a live daemon: each admitted session
/// first streams any not-yet-committed part of `prefix` honestly, then sends
/// a DATA frame whose offset gaps past everything committed — a protocol
/// violation the server must answer by cutting the session. The producer
/// reconnects with its assigned tenant token until the server bans it
/// outright (quarantine) or `max_sessions` sessions have been spent.
///
/// # Errors
///
/// Returns an error only when the endpoint never accepts a connection;
/// violation-triggered cuts are the expected outcome, not errors.
pub fn run_hostile_producer(
    endpoint: &Endpoint,
    seed: u64,
    prefix: &[u8],
    max_sessions: u64,
) -> io::Result<ChaosOutcome> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = ChaosOutcome::default();
    let mut setbacks = 0u32;
    while out.sessions < max_sessions {
        let dialed = match dial_as(endpoint, &mut out, &mut setbacks)? {
            Some(d) => d,
            None => return Ok(out), // quarantined or out of patience
        };
        let Dialed { mut link, hs } = dialed;
        out.tenant = hs.tenant;
        out.sessions += 1;
        let mut at = hs.resume_offset;
        while (at as usize) < prefix.len() {
            let end = prefix.len().min(at as usize + 1024);
            if link.send_data(at, &prefix[at as usize..end]).is_err() {
                break;
            }
            at = end as u64;
        }
        out.delivered = out.delivered.max(at);
        let gap = rng.gen_range(1u64..4096);
        let _ = link.send_data(at + gap, &[0xA5u8; 64]);
        wait_for_cut(&mut link, Duration::from_secs(5));
    }
    Ok(out)
}

/// Drives one slow-loris producer: each admitted session performs a valid
/// handshake, writes the header and first byte of a DATA frame it never
/// finishes, then holds the connection open without progress — the server's
/// stall budget must evict it. The producer reconnects with its assigned
/// token until the server bans the tenant or `max_sessions` sessions have
/// been spent, holding each session at most `hold` past admission.
///
/// # Errors
///
/// Returns an error only when the endpoint never accepts a connection;
/// stall evictions are the expected outcome, not errors.
pub fn run_slow_loris(
    endpoint: &Endpoint,
    max_sessions: u64,
    hold: Duration,
) -> io::Result<ChaosOutcome> {
    let mut out = ChaosOutcome::default();
    let mut setbacks = 0u32;
    while out.sessions < max_sessions {
        let dialed = match dial_as(endpoint, &mut out, &mut setbacks)? {
            Some(d) => d,
            None => return Ok(out),
        };
        let Dialed { mut link, hs } = dialed;
        out.tenant = hs.tenant;
        out.sessions += 1;
        // Start a 4 KiB frame, deliver exactly one payload byte of it, and
        // hold the connection open: the session stays live, commit progress
        // does not — until the server's stall eviction cuts it.
        let payload = [0x5Au8; 4096];
        let _ = link.send_data_stall(hs.resume_offset, &payload, DATA_HEADER + 1);
        wait_for_cut(&mut link, hold);
    }
    Ok(out)
}

/// One admitted connection plus its handshake.
struct Dialed {
    link: WireLink,
    hs: Handshake,
}

/// Dials and handshakes one session for a misbehaving producer, reusing the
/// tenant token in `out`. `Ok(None)` means stop: the tenant was quarantined
/// (recorded in `out`) or transient setbacks exhausted the retry budget.
fn dial_as(
    endpoint: &Endpoint,
    out: &mut ChaosOutcome,
    setbacks: &mut u32,
) -> io::Result<Option<Dialed>> {
    loop {
        let mut link = match WireLink::connect(endpoint) {
            Ok(link) => link,
            Err(e) => {
                *setbacks += 1;
                if *setbacks > 200 {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        match link.handshake(out.delivered, out.tenant, Duration::from_secs(5)) {
            Ok(hs) => return Ok(Some(Dialed { link, hs })),
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => {
                out.quarantined = true;
                return Ok(None);
            }
            Err(_) => {
                // Busy (admission reject) or a transient cut: back off briefly.
                *setbacks += 1;
                if *setbacks > 200 {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Classification of a burst of raw connection attempts against a daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FloodReport {
    /// Sessions the server admitted (each closed again with a clean
    /// zero-byte FIN so it never lingers as an idle tenant).
    pub admitted: u64,
    /// Sessions the server refused with the typed busy reply.
    pub busy: u64,
    /// Attempts that failed any other way (connect error, timeout, cut).
    pub failed: u64,
}

/// Connect-flood helper: dials `count` connections up front so they all sit
/// in the daemon's accept/pending queue at once, then completes each
/// handshake and classifies the reply. Admitted sessions are closed with a
/// zero-byte FIN.
pub fn connect_flood(endpoint: &Endpoint, count: usize, timeout: Duration) -> FloodReport {
    let mut report = FloodReport::default();
    let mut links = Vec::new();
    for _ in 0..count {
        match WireLink::connect(endpoint) {
            Ok(link) => links.push(link),
            Err(_) => report.failed += 1,
        }
    }
    for mut link in links {
        match link.handshake(0, 0, timeout) {
            Ok(_) => {
                report.admitted += 1;
                let _ = link.send_fin(0);
                let _ = link.recv_reply(Some(timeout));
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => report.busy += 1,
            Err(_) => report.failed += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{DecodeMode, TraceMeta, TraceReader, TraceRecord, TraceWriter};
    use crate::source::SliceSource;

    fn sample_trace(n: usize) -> Vec<u8> {
        let meta = TraceMeta {
            name: "faulty".to_string(),
            cores: 1,
            has_gaps: false,
            instructions_per_miss: vec![50.0],
        };
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for i in 0..n {
            w.push(TraceRecord {
                address: (i as u64) * 64,
                gap: 0,
                core: 0,
                is_write: false,
            })
            .unwrap();
        }
        w.finish().unwrap()
    }

    fn resync_decode(bytes: &[u8]) -> (u64, u64, bool) {
        let mut r =
            TraceReader::with_mode(SliceSource::with_chunk_size(bytes, 97), DecodeMode::Resync)
                .unwrap();
        let records = r.read_all().unwrap().len() as u64;
        (records, r.records_lost(), r.truncated())
    }

    #[test]
    fn frame_map_matches_writer_layout() {
        let bytes = sample_trace(FRAME_RECORDS + 7);
        let map = FrameMap::scan(&bytes).unwrap();
        assert_eq!(map.frames.len(), 2);
        assert_eq!(map.frames[0].records as usize, FRAME_RECORDS);
        assert_eq!(map.frames[1].records, 7);
        assert_eq!(map.total_records(), FRAME_RECORDS as u64 + 7);
        assert_eq!(map.frames[1].end(), bytes.len() as u64);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let bytes = sample_trace(FRAME_RECORDS + 7);
        let map = FrameMap::scan(&bytes).unwrap();
        for seed in 0..32 {
            let a = FaultPlan::seeded(seed, &map);
            let b = FaultPlan::seeded(seed, &map);
            assert_eq!(a, b);
            assert!(!a.ops.is_empty());
            assert_eq!(
                apply_plan(&bytes, &a).unwrap(),
                apply_plan(&bytes, &b).unwrap()
            );
        }
    }

    #[test]
    fn injector_is_chunking_invariant() {
        let bytes = sample_trace(2 * FRAME_RECORDS + 11);
        let map = FrameMap::scan(&bytes).unwrap();
        let plan = FaultPlan::seeded(42, &map);
        let whole = apply_plan(&bytes, &plan).unwrap();
        for chunk in [1usize, 7, 64, 100_000] {
            let mut inj = FaultInjector::new(SliceSource::with_chunk_size(&bytes, chunk), &plan);
            let mut out = Vec::new();
            while let Some(c) = inj.next_chunk().unwrap() {
                out.extend_from_slice(c);
            }
            assert_eq!(out, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn flip_bit_damages_exactly_one_frame() {
        let bytes = sample_trace(FRAME_RECORDS + 11);
        let map = FrameMap::scan(&bytes).unwrap();
        let f = &map.frames[0];
        let plan = FaultPlan {
            ops: vec![FaultOp::FlipBit {
                offset: f.offset + 100,
                bit: 3,
            }],
        };
        let corrupted = apply_plan(&bytes, &plan).unwrap();
        let (recovered, lost, truncated) = resync_decode(&corrupted);
        let expect = plan.expected(&map).unwrap();
        assert_eq!(recovered, expect.intact_records);
        assert!(lost >= expect.damaged_records);
        assert!(!truncated);
    }

    #[test]
    fn repeat_range_duplicates_a_frame() {
        let bytes = sample_trace(FRAME_RECORDS + 11);
        let map = FrameMap::scan(&bytes).unwrap();
        let f = map.frames[1];
        let plan = FaultPlan {
            ops: vec![FaultOp::RepeatRange {
                start: f.offset,
                end: f.end(),
            }],
        };
        let corrupted = apply_plan(&bytes, &plan).unwrap();
        let (recovered, lost, _) = resync_decode(&corrupted);
        let expect = plan.expected(&map).unwrap();
        assert_eq!(expect.baseline_records, map.total_records() + 11);
        assert_eq!(recovered, expect.intact_records);
        assert_eq!(lost, 0);
    }

    #[test]
    fn defer_range_reorders_frames() {
        let bytes = sample_trace(2 * FRAME_RECORDS);
        let map = FrameMap::scan(&bytes).unwrap();
        let (a, b) = (map.frames[0], map.frames[1]);
        let plan = FaultPlan {
            ops: vec![FaultOp::DeferRange {
                start: a.offset,
                end: a.end(),
                until: b.end(),
            }],
        };
        let corrupted = apply_plan(&bytes, &plan).unwrap();
        // Same bytes, different frame order: frame B then frame A.
        assert_eq!(corrupted.len(), bytes.len());
        let (recovered, lost, truncated) = resync_decode(&corrupted);
        assert_eq!(recovered, 2 * FRAME_RECORDS as u64);
        assert_eq!(lost, 0);
        assert!(!truncated);
    }

    #[test]
    fn truncate_mid_frame_sets_the_flag() {
        let bytes = sample_trace(FRAME_RECORDS + 11);
        let map = FrameMap::scan(&bytes).unwrap();
        let plan = FaultPlan {
            ops: vec![FaultOp::Truncate {
                at: map.frames[1].offset + 20,
            }],
        };
        let corrupted = apply_plan(&bytes, &plan).unwrap();
        assert_eq!(corrupted.len() as u64, map.frames[1].offset + 20);
        let (recovered, _, truncated) = resync_decode(&corrupted);
        let expect = plan.expected(&map).unwrap();
        assert!(expect.mid_frame_cut);
        assert_eq!(recovered, expect.intact_records);
        assert!(truncated);
    }

    #[test]
    fn stalls_do_not_change_the_bytes() {
        let bytes = sample_trace(FRAME_RECORDS);
        let plan = FaultPlan {
            ops: vec![FaultOp::Stall { at: 100, polls: 3 }],
        };
        assert_eq!(apply_plan(&bytes, &plan).unwrap(), bytes);
    }

    #[test]
    fn every_seeded_plan_satisfies_its_oracle() {
        let bytes = sample_trace(3 * FRAME_RECORDS + 500);
        let map = FrameMap::scan(&bytes).unwrap();
        for seed in 0..64u64 {
            let plan = FaultPlan::seeded(seed, &map);
            let expect = plan
                .expected(&map)
                .expect("seeded plans always have an oracle");
            let corrupted = apply_plan(&bytes, &plan).unwrap();
            let (recovered, lost, truncated) = resync_decode(&corrupted);
            assert_eq!(
                expect.intact_records + expect.damaged_records + expect.unaccounted_records,
                expect.baseline_records,
                "seed {seed}: oracle buckets must partition the baseline"
            );
            assert_eq!(
                recovered, expect.intact_records,
                "seed {seed}: intact frames must decode"
            );
            assert!(
                lost >= expect.damaged_records,
                "seed {seed}: ledger bound {lost} under-counts {}",
                expect.damaged_records
            );
            if expect.mid_frame_cut {
                assert!(truncated, "seed {seed}: mid-frame cut must set the flag");
            }
        }
    }

    // --- connection-level faults ---

    use crate::transport::{
        send_stream, Endpoint, Listener, MemInput, SendOptions, SocketSource, SocketTuning,
        WireLink,
    };
    use std::thread;
    use std::time::Duration;

    fn fast_policy() -> crate::source::FollowPolicy {
        crate::source::FollowPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            idle_limit: Duration::from_secs(2),
        }
    }

    /// Spawns a loopback TCP server draining every canonical byte, returning
    /// the bound endpoint and the collector handle.
    fn byte_server(idle: Duration) -> (Endpoint, thread::JoinHandle<Vec<u8>>) {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let policy = crate::source::FollowPolicy {
            idle_limit: idle,
            ..fast_policy()
        };
        let handle = thread::spawn(move || {
            let mut src = SocketSource::new(listener, policy).with_tuning(SocketTuning {
                ack_every: 1024,
                ..SocketTuning::default()
            });
            let mut out = Vec::new();
            while let Some(chunk) = src.next_chunk().unwrap() {
                out.extend_from_slice(chunk);
            }
            out
        });
        (endpoint, handle)
    }

    #[test]
    fn chaos_plans_have_one_hostile_and_one_clean() {
        for seed in 0..32u64 {
            let plan = ChaosPlan::seeded(seed, 6);
            assert_eq!(plan, ChaosPlan::seeded(seed, 6), "seed {seed}");
            assert_eq!(plan.roles.len(), 6);
            assert_eq!(plan.hostiles(), 1, "seed {seed}: exactly one hostile");
            assert!(
                plan.roles.contains(&ChaosRole::Clean),
                "seed {seed}: at least one strictly clean producer"
            );
        }
        assert_eq!(ChaosPlan::seeded(9, 1).roles, vec![ChaosRole::Clean]);
        assert_eq!(ChaosPlan::seeded(9, 0).roles, Vec::<ChaosRole>::new());
    }

    #[test]
    fn conn_plans_are_reproducible_and_nonempty() {
        for seed in 0..32u64 {
            let a = ConnFaultPlan::seeded(seed, 100_000);
            let b = ConnFaultPlan::seeded(seed, 100_000);
            assert_eq!(a, b);
            assert!(!a.ops.is_empty());
            for op in &a.ops {
                assert!(op.at() < 100_000);
                assert!(op.at() >= 1024);
            }
        }
        // Tiny payloads must still yield valid positions.
        let tiny = ConnFaultPlan::seeded(7, 10);
        assert!(tiny.ops.iter().all(|op| op.at() < 10));
    }

    #[test]
    fn no_retry_oracle_buckets_partition_baseline() {
        let bytes = sample_trace(2 * FRAME_RECORDS + 300);
        let map = FrameMap::scan(&bytes).unwrap();
        for seed in 0..64u64 {
            let plan = ConnFaultPlan::seeded(seed, bytes.len() as u64);
            let expect = plan
                .expected_no_retry(&map, 1024)
                .expect("single-truncation oracle always applies");
            assert_eq!(
                expect.intact_records + expect.damaged_records + expect.unaccounted_records,
                expect.baseline_records,
                "seed {seed}: oracle buckets must partition the baseline"
            );
            if let Some(prefix) = plan.delivered_prefix(1024) {
                assert_eq!(prefix % 1024, 0, "prefix must land on a frame boundary");
                assert!(prefix <= plan.first_cut().unwrap());
            } else {
                assert_eq!(expect.intact_records, map.total_records());
            }
        }
    }

    #[test]
    fn fault_transport_with_retry_delivers_byte_identical_stream() {
        let payload = sample_trace(2 * FRAME_RECORDS + 500);
        for seed in [3u64, 11, 19, 42] {
            let plan = ConnFaultPlan::seeded(seed, payload.len() as u64);
            let state = ConnFaultState::shared(&plan);
            let (endpoint, server) = byte_server(Duration::from_secs(2));
            let dial_state = Arc::clone(&state);
            let mut input = MemInput::new(payload.clone());
            let options = SendOptions {
                policy: fast_policy(),
                data_bytes: 1024,
                ..SendOptions::default()
            };
            let outcome = send_stream(
                &mut input,
                move || {
                    WireLink::connect(&endpoint)
                        .map(|link| FaultTransport::new(link, Arc::clone(&dial_state)))
                },
                &options,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: retrying client must deliver: {e}"));
            let delivered = server.join().unwrap();
            assert_eq!(
                delivered, payload,
                "seed {seed}: stream must be byte-identical"
            );
            assert!(outcome.complete, "seed {seed}: FIN must be acked");
            assert_eq!(outcome.acked, payload.len() as u64);
            let cuts = plan.ops.iter().filter(|op| op.cuts()).count() as u64;
            assert_eq!(
                outcome.sessions,
                1 + cuts,
                "seed {seed}: each cut costs exactly one extra session"
            );
            assert!(
                state.lock().unwrap().all_fired(),
                "seed {seed}: every planned op must fire"
            );
        }
    }

    #[test]
    fn fault_transport_no_retry_delivers_exact_prefix() {
        let payload = sample_trace(2 * FRAME_RECORDS + 500);
        let plans = [
            ConnFaultPlan {
                ops: vec![ConnFaultOp::Disconnect { at: 3_000 }],
            },
            ConnFaultPlan {
                ops: vec![
                    ConnFaultOp::DuplicateTail { at: 1_500 },
                    ConnFaultOp::ShortWrite {
                        at: 5_000,
                        keep: 10_000, // clamped below the frame length internally
                    },
                ],
            },
        ];
        for plan in plans {
            let state = ConnFaultState::shared(&plan);
            let (endpoint, server) = byte_server(Duration::from_millis(300));
            let mut input = MemInput::new(payload.clone());
            let options = SendOptions {
                policy: fast_policy(),
                retry: false,
                data_bytes: 1024,
                ..SendOptions::default()
            };
            let err = send_stream(
                &mut input,
                move || {
                    WireLink::connect(&endpoint)
                        .map(|link| FaultTransport::new(link, Arc::clone(&state)))
                },
                &options,
            )
            .expect_err("a cut without retry must surface a transport error");
            assert!(!err.to_string().is_empty());
            let delivered = server.join().unwrap();
            let prefix = plan.delivered_prefix(1024).unwrap() as usize;
            assert_eq!(
                delivered,
                &payload[..prefix],
                "non-retrying delivery must stop exactly at the frame boundary below the cut"
            );
        }
    }

    #[test]
    fn stalls_and_duplicates_alone_complete_without_reconnect() {
        let payload = sample_trace(FRAME_RECORDS + 100);
        let plan = ConnFaultPlan {
            ops: vec![
                ConnFaultOp::StallConn {
                    at: 2_000,
                    millis: 5,
                },
                ConnFaultOp::DuplicateTail { at: 4_000 },
            ],
        };
        let state = ConnFaultState::shared(&plan);
        let (endpoint, server) = byte_server(Duration::from_secs(2));
        let mut input = MemInput::new(payload.clone());
        let options = SendOptions {
            policy: fast_policy(),
            data_bytes: 1024,
            ..SendOptions::default()
        };
        let dial_state = Arc::clone(&state);
        let outcome = send_stream(
            &mut input,
            move || {
                WireLink::connect(&endpoint)
                    .map(|link| FaultTransport::new(link, Arc::clone(&dial_state)))
            },
            &options,
        )
        .unwrap();
        assert_eq!(server.join().unwrap(), payload);
        assert_eq!(outcome.sessions, 1, "no cut means no reconnect");
        assert!(outcome.complete);
        assert!(state.lock().unwrap().all_fired());
    }
}
