//! Deterministic synthetic trace generation from a workload profile.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use impress_dram::address::PhysicalAddress;

use crate::profile::WorkloadProfile;
use crate::trace::MemoryAccess;

/// Generates an infinite, deterministic LLC-miss stream for one core running one
/// workload profile.
///
/// The generator walks `streams` concurrent array streams (round-robin, one access per
/// stream in turn, like STREAM's `c[i] = a[i] + b[i]` loops). Each stream advances in
/// sequential runs: after each access it either moves to the next cache line (with a
/// probability chosen so that the *average* run length matches
/// `sequential_run_lines`) or jumps to a uniformly random line in its partition of the
/// footprint. Writes are interleaved at the profile's write fraction.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    core: u8,
    /// Base physical address of this core's footprint.
    base: u64,
    /// Footprint size in cache lines per stream.
    lines_per_stream: u64,
    /// Probability of continuing the current sequential run.
    continue_probability: f64,
    write_fraction: f64,
    instructions_per_miss: f64,
    /// Per-stream cursor (line offset within the stream's partition).
    cursors: Vec<u64>,
    /// Which stream issues the next access.
    next_stream: usize,
    rng: SmallRng,
}

impl TraceGenerator {
    /// Creates a generator for `core` running `profile`, with its footprint placed at
    /// `base` (must be cache-line aligned) and randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: &WorkloadProfile, core: u8, base: u64, seed: u64) -> Self {
        if let Err(msg) = profile.validate() {
            panic!("invalid workload profile: {msg}");
        }
        let total_lines = (profile.footprint_bytes / 64).max(profile.streams as u64);
        let lines_per_stream = (total_lines / profile.streams as u64).max(1);
        // A run terminates with probability 1/run_length per access, giving a geometric
        // run-length distribution with the desired mean.
        let continue_probability = 1.0 - 1.0 / profile.sequential_run_lines;
        let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(core) << 56));
        let cursors = (0..profile.streams)
            .map(|_| rng.gen_range(0..lines_per_stream))
            .collect();
        Self {
            core,
            base: base & !63,
            lines_per_stream,
            continue_probability,
            write_fraction: profile.write_fraction,
            instructions_per_miss: profile.instructions_per_miss(),
            cursors,
            next_stream: 0,
            rng,
        }
    }

    /// The core this generator models.
    pub fn core(&self) -> u8 {
        self.core
    }

    /// Number of concurrent streams being walked.
    pub fn streams(&self) -> usize {
        self.cursors.len()
    }

    /// Average number of instructions the core executes between LLC misses.
    pub fn instructions_per_miss(&self) -> f64 {
        self.instructions_per_miss
    }

    /// Generates the next access.
    pub fn next_access(&mut self) -> MemoryAccess {
        let stream = self.next_stream;
        self.next_stream = (self.next_stream + 1) % self.cursors.len();

        let stream_base = self.base + stream as u64 * self.lines_per_stream * 64;
        let address = PhysicalAddress::new(stream_base + self.cursors[stream] * 64);
        let is_write = self.rng.gen_bool(self.write_fraction);
        // Decide where this stream's next access goes.
        if self.rng.gen_bool(self.continue_probability) {
            self.cursors[stream] = (self.cursors[stream] + 1) % self.lines_per_stream;
        } else {
            self.cursors[stream] = self.rng.gen_range(0..self.lines_per_stream);
        }
        MemoryAccess {
            address,
            is_write,
            core: self.core,
        }
    }

    /// Generates the next `n` accesses.
    pub fn take_accesses(&mut self, n: usize) -> Vec<MemoryAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_profile;
    use crate::stream::stream_kernel_profile;

    #[test]
    fn generation_is_deterministic() {
        let p = spec_profile("mcf").unwrap();
        let mut a = TraceGenerator::new(&p, 0, 0, 42);
        let mut b = TraceGenerator::new(&p, 0, 0, 42);
        assert_eq!(a.take_accesses(1000), b.take_accesses(1000));
    }

    #[test]
    fn different_seeds_differ() {
        let p = spec_profile("mcf").unwrap();
        let mut a = TraceGenerator::new(&p, 0, 0, 1);
        let mut b = TraceGenerator::new(&p, 0, 0, 2);
        assert_ne!(a.take_accesses(100), b.take_accesses(100));
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let p = spec_profile("gcc").unwrap();
        let base = 4u64 << 30;
        let mut g = TraceGenerator::new(&p, 1, base, 7);
        for a in g.take_accesses(10_000) {
            assert!(a.address.as_u64() >= base);
            assert!(a.address.as_u64() < base + p.footprint_bytes);
            assert_eq!(a.address.as_u64() % 64, 0);
            assert_eq!(a.core, 1);
        }
    }

    #[test]
    fn stream_kernels_walk_multiple_interleaved_streams() {
        let p = stream_kernel_profile("triad").unwrap();
        let mut g = TraceGenerator::new(&p, 0, 0, 3);
        assert_eq!(g.streams(), 3);
        let accesses = g.take_accesses(9);
        // Accesses 0, 3, 6 come from stream 0 and are (mostly) consecutive lines.
        let s0: Vec<u64> = accesses
            .iter()
            .step_by(3)
            .map(|a| a.address.as_u64())
            .collect();
        assert!(s0[1] == s0[0] + 64 || s0[2] == s0[1] + 64);
        // Different streams live in disjoint partitions of the footprint.
        let partition = p.footprint_bytes / 3 / 2; // well below one partition size
        assert!(
            accesses[0]
                .address
                .as_u64()
                .abs_diff(accesses[1].address.as_u64())
                > partition
        );
    }

    #[test]
    fn stream_runs_are_much_longer_than_spec_runs() {
        // Compare per-stream sequentiality: the fraction of accesses that continue the
        // previous line of the *same stream*.
        fn sequential_fraction(profile: &crate::profile::WorkloadProfile, seed: u64) -> f64 {
            let streams = profile.streams;
            let mut g = TraceGenerator::new(profile, 0, 0, seed);
            let accesses = g.take_accesses(30_000);
            let mut sequential = 0u64;
            let mut total = 0u64;
            for i in streams..accesses.len() {
                total += 1;
                if accesses[i].address.as_u64() == accesses[i - streams].address.as_u64() + 64 {
                    sequential += 1;
                }
            }
            sequential as f64 / total as f64
        }
        let stream = sequential_fraction(&stream_kernel_profile("copy").unwrap(), 3);
        let spec = sequential_fraction(&spec_profile("mcf").unwrap(), 3);
        assert!(stream > 0.9, "stream sequential fraction = {stream}");
        assert!(spec < 0.5, "spec sequential fraction = {spec}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = stream_kernel_profile("copy").unwrap();
        let mut g = TraceGenerator::new(&p, 0, 0, 11);
        let accesses = g.take_accesses(100_000);
        let writes = accesses.iter().filter(|a| a.is_write).count() as f64;
        let frac = writes / accesses.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "write fraction = {frac}");
    }
}
