//! Synthetic workload traces for the ImPress performance evaluation.
//!
//! The paper drives its ChampSim + DRAMsim3 simulations with two classes of workloads
//! (§III-A): ten SPEC2017 traces (low/medium row-buffer locality) and ten STREAM-based
//! workloads (four kernels plus six mixes, all with very high spatial locality). We
//! cannot redistribute SPEC traces, so this crate generates *synthetic* LLC-miss
//! streams whose two properties that matter for the paper's figures — memory intensity
//! (misses per kilo-instruction) and row-buffer locality (average sequential run
//! length) — are set per workload to span the same range as the originals. DESIGN.md
//! documents this substitution.
//!
//! A [`profile::WorkloadProfile`] describes a workload; [`generator::TraceGenerator`]
//! turns it into a deterministic, seeded stream of [`trace::MemoryAccess`]es;
//! [`mix::WorkloadMix`] assembles the 8-core rate-mode and mixed configurations used in
//! the evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod faults;
pub mod generator;
pub mod mix;
pub mod profile;
pub mod source;
pub mod spec;
pub mod stream;
pub mod trace;
pub mod transport;

pub use codec::{
    DecodeMode, FaultKind, IngestFault, TraceMeta, TraceReader, TraceRecord, TraceWriter,
};
pub use faults::{
    apply_plan, connect_flood, run_hostile_producer, run_slow_loris, ChaosOutcome, ChaosPlan,
    ChaosRole, ConnFaultOp, ConnFaultPlan, ConnFaultState, FaultInjector, FaultOp, FaultPlan,
    FaultTransport, FloodReport, FrameMap,
};
pub use generator::TraceGenerator;
pub use mix::WorkloadMix;
pub use profile::{LocalityClass, WorkloadProfile};
pub use source::{
    AccessSource, DisconnectReason, FollowPolicy, FollowSource, ReadSource, SliceSource,
    TraceSource, TransportEvent,
};
pub use trace::MemoryAccess;
pub use transport::{
    send_stream, send_to, ClientLink, Endpoint, FileInput, Handshake, Listener, MemInput,
    ReaderInput, SendInput, SendOptions, SendOutcome, ServerPoll, ServerReply, SocketSource,
    SocketTuning, TenantLimits, TenantServer, TenantSink, Wire, WireLink,
};
