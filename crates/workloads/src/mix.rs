//! Multi-core workload mixes (8-core rate mode and STREAM mixes).

use crate::generator::TraceGenerator;
use crate::profile::{LocalityClass, WorkloadProfile};
use crate::spec::{all_spec_profiles, spec_profile};
use crate::stream::{mix_components, stream_kernel_profile, stream_names};
use crate::trace::MemoryAccess;

/// Number of cores in the paper's baseline system (Table II).
pub const CORES: usize = 8;

/// An 8-core workload: one trace generator per core plus bookkeeping for reporting.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    name: String,
    class: LocalityClass,
    generators: Vec<TraceGenerator>,
    instructions_per_miss: Vec<f64>,
}

impl WorkloadMix {
    /// Builds a rate-mode mix: all 8 cores run `profile`, each with a private footprint
    /// and its own seed stream.
    pub fn rate_mode(name: &str, profile: &WorkloadProfile, seed: u64) -> Self {
        let generators: Vec<TraceGenerator> = (0..CORES)
            .map(|core| {
                let base = core as u64 * (profile.footprint_bytes + (1 << 30));
                TraceGenerator::new(profile, core as u8, base, seed.wrapping_add(core as u64))
            })
            .collect();
        let instructions_per_miss = vec![profile.instructions_per_miss(); CORES];
        Self {
            name: name.to_string(),
            class: profile.class,
            generators,
            instructions_per_miss,
        }
    }

    /// Builds a mixed workload: the first four cores run `a`, the last four run `b`.
    pub fn half_and_half(name: &str, a: &WorkloadProfile, b: &WorkloadProfile, seed: u64) -> Self {
        let mut generators = Vec::with_capacity(CORES);
        let mut instructions_per_miss = Vec::with_capacity(CORES);
        for core in 0..CORES {
            let profile = if core < CORES / 2 { a } else { b };
            let base = core as u64 * (profile.footprint_bytes.max(a.footprint_bytes) + (1 << 30));
            generators.push(TraceGenerator::new(
                profile,
                core as u8,
                base,
                seed.wrapping_add(core as u64),
            ));
            instructions_per_miss.push(profile.instructions_per_miss());
        }
        let class = if a.class == b.class {
            a.class
        } else {
            LocalityClass::Stream
        };
        Self {
            name: name.to_string(),
            class,
            generators,
            instructions_per_miss,
        }
    }

    /// Builds any of the paper's twenty workloads by name (ten SPEC, four STREAM
    /// kernels, six STREAM mixes). Returns `None` for unknown names.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        if let Some(p) = spec_profile(name) {
            return Some(Self::rate_mode(name, &p, seed));
        }
        if let Some(p) = stream_kernel_profile(name) {
            return Some(Self::rate_mode(name, &p, seed));
        }
        if let Some((a, b)) = mix_components(name) {
            let pa = stream_kernel_profile(a)?;
            let pb = stream_kernel_profile(b)?;
            return Some(Self::half_and_half(name, &pa, &pb, seed));
        }
        None
    }

    /// All twenty workload names in the paper's figure order.
    pub fn paper_workload_names() -> Vec<&'static str> {
        all_spec_profiles()
            .iter()
            .map(|p| p.name)
            .chain(stream_names())
            .collect()
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload class (SPEC or STREAM) for geometric-mean grouping.
    pub fn class(&self) -> LocalityClass {
        self.class
    }

    /// Number of cores in the mix.
    pub fn cores(&self) -> usize {
        self.generators.len()
    }

    /// Average instructions per LLC miss for `core`.
    pub fn instructions_per_miss(&self, core: usize) -> f64 {
        self.instructions_per_miss[core]
    }

    /// Generates the next access for `core`.
    pub fn next_access(&mut self, core: usize) -> MemoryAccess {
        self.generators[core].next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_paper_workloads() {
        let names = WorkloadMix::paper_workload_names();
        assert_eq!(names.len(), 20);
        for name in names {
            let mix = WorkloadMix::by_name(name, 1).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(mix.cores(), 8);
        }
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(WorkloadMix::by_name("linpack", 0).is_none());
    }

    #[test]
    fn rate_mode_gives_private_footprints() {
        let p = spec_profile("mcf").unwrap();
        let mut mix = WorkloadMix::rate_mode("mcf", &p, 5);
        let a0 = mix.next_access(0);
        let a7 = mix.next_access(7);
        // Different cores touch disjoint address ranges.
        assert!(a0.address.as_u64().abs_diff(a7.address.as_u64()) > p.footprint_bytes);
    }

    #[test]
    fn mixes_combine_two_kernels() {
        let mix = WorkloadMix::by_name("add_copy", 9).unwrap();
        assert_eq!(mix.class(), LocalityClass::Stream);
        // add: 2 loads + 1 store => instructions per miss differ from copy's.
        assert_ne!(mix.instructions_per_miss(0), mix.instructions_per_miss(7));
    }

    #[test]
    fn spec_and_stream_classes_are_reported() {
        assert_eq!(
            WorkloadMix::by_name("gcc", 0).unwrap().class(),
            LocalityClass::Spec
        );
        assert_eq!(
            WorkloadMix::by_name("triad", 0).unwrap().class(),
            LocalityClass::Stream
        );
    }
}
