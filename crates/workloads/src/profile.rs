//! Workload profiles: the per-workload parameters that drive trace synthesis.

use std::fmt;

/// Broad classification of a workload's row-buffer behaviour, used to group results
/// the way the paper's figures do (SPEC vs. STREAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityClass {
    /// SPEC2017-like: low-to-medium spatial locality, irregular access patterns.
    Spec,
    /// STREAM-like: long sequential runs, bandwidth bound.
    Stream,
}

impl fmt::Display for LocalityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalityClass::Spec => f.write_str("SPEC"),
            LocalityClass::Stream => f.write_str("STREAM"),
        }
    }
}

/// The parameters of one synthetic workload.
///
/// The two parameters that determine how a workload reacts to Row-Press defenses are
/// its memory intensity (`mpki`) and its spatial locality (`sequential_run_lines`):
/// limiting the row-open time (ExPress) hurts workloads with long sequential runs,
/// while extra mitigations hurt memory-intensive workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name as it appears in the paper's figures.
    pub name: &'static str,
    /// SPEC-like or STREAM-like.
    pub class: LocalityClass,
    /// LLC misses per kilo-instruction per core.
    pub mpki: f64,
    /// Average number of consecutive cache lines accessed before jumping elsewhere.
    pub sequential_run_lines: f64,
    /// Working-set size in bytes per core.
    pub footprint_bytes: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Number of concurrent array streams the workload walks (STREAM's copy touches 2
    /// arrays, add/triad touch 3; pointer-chasing SPEC codes effectively walk 1).
    /// Accesses round-robin across the streams, which spreads the reuse of each DRAM
    /// row over a longer time window.
    pub streams: usize,
}

impl WorkloadProfile {
    /// Validates the profile parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.mpki <= 0.0 {
            return Err(format!("{}: MPKI must be positive", self.name));
        }
        if self.sequential_run_lines < 1.0 {
            return Err(format!("{}: run length must be at least 1 line", self.name));
        }
        if self.footprint_bytes < 1 << 20 {
            return Err(format!("{}: footprint must be at least 1 MiB", self.name));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(format!("{}: write fraction must be in [0, 1]", self.name));
        }
        if self.streams == 0 || self.streams > 8 {
            return Err(format!("{}: streams must be in 1..=8", self.name));
        }
        Ok(())
    }

    /// Average number of instructions executed per LLC miss (1000 / MPKI).
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test",
            class: LocalityClass::Spec,
            mpki: 10.0,
            sequential_run_lines: 2.0,
            footprint_bytes: 64 << 20,
            write_fraction: 0.3,
            streams: 1,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(profile().validate().is_ok());
        assert!((profile().instructions_per_miss() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = profile();
        p.mpki = 0.0;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.sequential_run_lines = 0.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.write_fraction = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_display() {
        assert_eq!(LocalityClass::Spec.to_string(), "SPEC");
        assert_eq!(LocalityClass::Stream.to_string(), "STREAM");
    }
}
