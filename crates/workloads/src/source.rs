//! Access and byte-stream sources for the trace-ingestion frontend.
//!
//! Two traits decouple where accesses come from and how bytes arrive:
//!
//! * [`AccessSource`] abstracts "something that produces per-core memory
//!   accesses" — the synthetic [`WorkloadMix`](crate::mix::WorkloadMix)
//!   implements it, and so does the replay source the simulator builds from a
//!   recorded trace, letting one run loop drive both.
//! * [`TraceSource`] abstracts "something that produces byte chunks" — files,
//!   stdin pipes, in-memory buffers today; mmap'd regions or sockets slot in
//!   later without touching the codec.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::mix::WorkloadMix;
use crate::trace::MemoryAccess;

/// A per-core producer of memory accesses, the input side of the run loop.
///
/// Implementations must be deterministic: for a fixed construction, the sequence
/// of accesses returned for each core must not depend on how calls to different
/// cores interleave. The simulator's bit-for-bit reproducibility across thread
/// counts rests on this.
pub trait AccessSource {
    /// Number of cores this source feeds.
    fn cores(&self) -> usize;

    /// Average instructions per LLC miss for `core` (drives the core model's
    /// issue pacing).
    fn instructions_per_miss(&self, core: usize) -> f64;

    /// Produces the next access for `core`.
    fn next_access(&mut self, core: usize) -> MemoryAccess;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

impl AccessSource for WorkloadMix {
    fn cores(&self) -> usize {
        WorkloadMix::cores(self)
    }

    fn instructions_per_miss(&self, core: usize) -> f64 {
        WorkloadMix::instructions_per_miss(self, core)
    }

    fn next_access(&mut self, core: usize) -> MemoryAccess {
        WorkloadMix::next_access(self, core)
    }

    fn name(&self) -> &str {
        WorkloadMix::name(self)
    }
}

/// Why a transport connection stopped delivering bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// The peer closed the connection (clean EOF without a protocol goodbye).
    Eof,
    /// No bytes or heartbeats arrived within the idle limit.
    Stall,
    /// The peer violated the wire protocol (bad frame, offset gap, bad
    /// handshake).
    Protocol,
    /// A socket-level read or write error.
    Io,
}

impl DisconnectReason {
    /// Stable lowercase label used in ledger JSON.
    pub fn label(self) -> &'static str {
        match self {
            DisconnectReason::Eof => "eof",
            DisconnectReason::Stall => "stall",
            DisconnectReason::Protocol => "protocol",
            DisconnectReason::Io => "io",
        }
    }
}

/// A connection-level incident observed by a networked [`TraceSource`].
///
/// Most are informational: they imply no record loss (lost bytes surface
/// through the codec's own fault ledger), so a supervising daemon records
/// them with `records_lost = 0` and they do not degrade the verdict outcome.
/// The exception is [`TransportEvent::Quarantined`], which marks a producer
/// the server banned for repeated protocol violations and forces the verdict
/// outcome to `"quarantined"`. Offsets are absolute canonical stream bytes —
/// the same coordinate space the codec and checkpoints use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// A producer reconnected and was resumed from the server's committed
    /// offset. `session` numbers accepted sessions from 1.
    SessionResumed {
        /// 1-based accepted-session number.
        session: u64,
        /// Committed stream offset the session resumed from.
        offset: u64,
    },
    /// A connection dropped (EOF, stall, protocol violation, or I/O error)
    /// with `offset` canonical bytes committed so far.
    Disconnected {
        /// 1-based accepted-session number.
        session: u64,
        /// Committed stream offset when the connection dropped.
        offset: u64,
        /// Why the connection stopped delivering.
        reason: DisconnectReason,
    },
    /// Retransmitted bytes that were already committed were dropped by the
    /// server's dedup-by-offset logic.
    DuplicateDropped {
        /// 1-based accepted-session number.
        session: u64,
        /// Committed stream offset at the time of the drop.
        offset: u64,
        /// How many already-committed bytes were discarded.
        bytes: u64,
    },
    /// The server drained gracefully (SIGTERM): it sent a protocol goodbye
    /// and stopped accepting bytes at `offset`.
    Drained {
        /// Committed stream offset at drain time.
        offset: u64,
    },
    /// The server quarantined this producer for repeated protocol
    /// violations: its tenant token is banned for the rest of the daemon's
    /// life and its pipeline was finalized at `offset`.
    Quarantined {
        /// 1-based accepted-session number of the offending session.
        session: u64,
        /// Committed stream offset when the quarantine fired.
        offset: u64,
        /// Protocol violations accumulated before the ban.
        violations: u64,
    },
}

/// A producer of byte chunks feeding the trace codec.
///
/// Chunk boundaries carry no meaning — the reader reassembles records and frames
/// that straddle them — so implementations are free to return whatever sizes are
/// natural (read-buffer fills, mmap windows, socket datagrams).
pub trait TraceSource {
    /// Returns the next chunk of bytes, or `None` at end of stream.
    ///
    /// The returned slice is valid until the next call.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying medium.
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>>;

    /// Drains connection-level incidents accumulated since the last call.
    ///
    /// Non-networked sources never produce any; wrappers forward to the inner
    /// source so events survive composition (follow, fault injection).
    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        Vec::new()
    }
}

/// Default chunk size for [`ReadSource`] (64 KiB).
pub const READ_CHUNK_BYTES: usize = 64 * 1024;

/// A [`TraceSource`] over any [`Read`] — files, stdin, pipes.
#[derive(Debug)]
pub struct ReadSource<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> ReadSource<R> {
    /// Wraps `inner` with the default chunk size.
    pub fn new(inner: R) -> Self {
        Self::with_chunk_size(inner, READ_CHUNK_BYTES)
    }

    /// Wraps `inner`, filling chunks of up to `chunk_bytes` per call.
    pub fn with_chunk_size(inner: R, chunk_bytes: usize) -> Self {
        Self {
            inner,
            buf: vec![0u8; chunk_bytes.max(1)],
        }
    }
}

impl<R: Read> TraceSource for ReadSource<R> {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => return Ok(Some(&self.buf[..n])),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`TraceSource`] over an in-memory byte slice (also the shape an mmap'd
/// file takes).
#[derive(Debug)]
pub struct SliceSource<'a> {
    data: &'a [u8],
    at: usize,
    chunk: usize,
}

impl<'a> SliceSource<'a> {
    /// Serves `data` in chunks of the default size.
    pub fn new(data: &'a [u8]) -> Self {
        Self::with_chunk_size(data, READ_CHUNK_BYTES)
    }

    /// Serves `data` in chunks of `chunk_bytes` (useful for exercising
    /// boundary handling in tests).
    pub fn with_chunk_size(data: &'a [u8], chunk_bytes: usize) -> Self {
        Self {
            data,
            at: 0,
            chunk: chunk_bytes.max(1),
        }
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        if self.at >= self.data.len() {
            return Ok(None);
        }
        let end = (self.at + self.chunk).min(self.data.len());
        let s = &self.data[self.at..end];
        self.at = end;
        Ok(Some(s))
    }
}

/// Retry/backoff policy for [`FollowSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowPolicy {
    /// Sleep before the first retry after the inner source runs dry.
    pub initial_backoff: Duration,
    /// Backoff doubles per consecutive dry poll, capped here.
    pub max_backoff: Duration,
    /// Total consecutive idle time after which the stream is declared ended.
    pub idle_limit: Duration,
}

impl Default for FollowPolicy {
    fn default() -> Self {
        Self {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            idle_limit: Duration::from_secs(5),
        }
    }
}

impl FollowPolicy {
    /// Listen-mode defaults for a network daemon: same backoff as
    /// [`FollowPolicy::default`], but a 30 s idle limit — a file follower's
    /// 5 s default is far too impatient for producers dialing in (or
    /// returning after a network partition) over a socket.
    pub fn listening() -> Self {
        Self {
            idle_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }
}

/// A [`TraceSource`] that follows a growing stream (FIFO, tailed file, slow
/// socket): when the inner source reports end-of-stream or an empty chunk, it
/// retries with capped exponential backoff instead of giving up, and only
/// reports end-of-stream after [`FollowPolicy::idle_limit`] of consecutive
/// silence.
///
/// Stall polls are counted into a shared [`AtomicU64`] so a supervising daemon
/// can watch ingest lag without threading state through the codec.
#[derive(Debug)]
pub struct FollowSource<S: TraceSource> {
    inner: S,
    policy: FollowPolicy,
    stalls: Arc<AtomicU64>,
    buf: Vec<u8>,
}

impl<S: TraceSource> FollowSource<S> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: S, policy: FollowPolicy) -> Self {
        Self {
            inner,
            policy,
            stalls: Arc::new(AtomicU64::new(0)),
            buf: Vec::new(),
        }
    }

    /// Shared counter of stall polls (empty reads that triggered a backoff).
    pub fn stall_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.stalls)
    }
}

impl<S: TraceSource> TraceSource for FollowSource<S> {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        let mut idle = Duration::ZERO;
        let mut backoff = self.policy.initial_backoff;
        loop {
            // Copy out of the inner borrow so the retry loop can keep calling
            // the inner source.
            let got = match self.inner.next_chunk()? {
                Some(chunk) if !chunk.is_empty() => {
                    self.buf.clear();
                    self.buf.extend_from_slice(chunk);
                    true
                }
                _ => false,
            };
            if got {
                return Ok(Some(&self.buf));
            }
            if idle >= self.policy.idle_limit {
                return Ok(None);
            }
            self.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            idle += backoff;
            backoff = (backoff * 2).min(self.policy.max_backoff);
        }
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        self.inner.take_transport_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_chunks_cover_everything() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut src = SliceSource::with_chunk_size(&data, 100);
        let mut out = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            out.extend_from_slice(c);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn read_source_streams_a_reader() {
        let data = vec![7u8; 1000];
        let mut src = ReadSource::with_chunk_size(&data[..], 64);
        let mut total = 0;
        while let Some(c) = src.next_chunk().unwrap() {
            assert!(c.len() <= 64);
            total += c.len();
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn follow_source_rides_out_a_transient_stall() {
        // A source that stalls (empty chunks) twice mid-stream, then resumes.
        struct Stuttering {
            data: Vec<u8>,
            call: usize,
        }
        impl TraceSource for Stuttering {
            fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
                self.call += 1;
                match self.call {
                    1 => Ok(Some(&self.data[..4])),
                    2 | 3 => Ok(Some(&[])),
                    4 => Ok(Some(&self.data[4..])),
                    _ => Ok(None),
                }
            }
        }
        let policy = FollowPolicy {
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            idle_limit: Duration::from_millis(2),
        };
        let mut src = FollowSource::new(
            Stuttering {
                data: (0..10u8).collect(),
                call: 0,
            },
            policy,
        );
        let stalls = src.stall_counter();
        let mut out = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            out.extend_from_slice(c);
        }
        assert_eq!(out, (0..10u8).collect::<Vec<_>>());
        // Two mid-stream stalls plus the trailing idle-out were all counted.
        assert!(stalls.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn workload_mix_is_an_access_source() {
        let mut mix = WorkloadMix::by_name("mcf", 3).unwrap();
        // Trait and inherent methods agree.
        assert_eq!(AccessSource::cores(&mix), 8);
        assert_eq!(AccessSource::name(&mix), "mcf");
        assert_eq!(
            AccessSource::instructions_per_miss(&mix, 0),
            WorkloadMix::instructions_per_miss(&mix, 0)
        );
        let a = AccessSource::next_access(&mut mix, 4);
        assert_eq!(a.core, 4);
    }
}
