//! SPEC2017-like workload profiles (§III-A).
//!
//! The ten workloads are the SPEC2017 rate-mode traces the paper uses. The parameters
//! below are *synthetic*: MPKI values are representative of the published memory
//! intensities of these benchmarks, and the sequential run lengths are chosen so that
//! the class as a whole exhibits the low/medium row-buffer locality the paper relies on
//! (Figure 3: SPEC is largely insensitive to tMRO).

use crate::profile::{LocalityClass, WorkloadProfile};

/// The ten SPEC2017 workload names used in the paper's figures, in figure order.
pub const SPEC_NAMES: [&str; 10] = [
    "fotonik3d",
    "mcf",
    "gcc",
    "omnetpp",
    "bwaves",
    "roms",
    "cactuBSSN",
    "wrf",
    "pop2",
    "xalancbmk",
];

/// Returns the profile of one SPEC-like workload by name, or `None` if unknown.
pub fn spec_profile(name: &str) -> Option<WorkloadProfile> {
    let (mpki, run, footprint_mib, writes, streams) = match name {
        // (MPKI, sequential run in lines, footprint MiB, write fraction, streams)
        "fotonik3d" => (25.0, 6.0, 256, 0.25, 2),
        "mcf" => (45.0, 1.3, 512, 0.20, 1),
        "gcc" => (6.0, 2.0, 128, 0.30, 1),
        "omnetpp" => (18.0, 1.5, 256, 0.30, 1),
        "bwaves" => (28.0, 5.0, 384, 0.25, 2),
        "roms" => (22.0, 4.5, 256, 0.30, 2),
        "cactuBSSN" => (12.0, 3.5, 256, 0.35, 2),
        "wrf" => (10.0, 4.0, 192, 0.30, 2),
        "pop2" => (8.0, 3.0, 192, 0.30, 1),
        "xalancbmk" => (4.0, 1.5, 96, 0.25, 1),
        _ => return None,
    };
    Some(WorkloadProfile {
        name: SPEC_NAMES.iter().find(|&&n| n == name)?,
        class: LocalityClass::Spec,
        mpki,
        sequential_run_lines: run,
        footprint_bytes: footprint_mib << 20,
        write_fraction: writes,
        streams,
    })
}

/// All ten SPEC-like profiles in figure order.
pub fn all_spec_profiles() -> Vec<WorkloadProfile> {
    SPEC_NAMES
        .iter()
        .map(|n| spec_profile(n).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_profiles_exist_and_validate() {
        let profiles = all_spec_profiles();
        assert_eq!(profiles.len(), 10);
        for p in &profiles {
            p.validate().unwrap();
            assert_eq!(p.class, LocalityClass::Spec);
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(spec_profile("doom3").is_none());
    }

    #[test]
    fn spec_runs_are_short() {
        // The defining property of the class: short sequential runs, so early row
        // closure (small tMRO) costs SPEC little (Figure 3).
        for p in all_spec_profiles() {
            assert!(p.sequential_run_lines <= 8.0, "{} run too long", p.name);
        }
    }

    #[test]
    fn mcf_is_most_memory_intensive() {
        let mcf = spec_profile("mcf").unwrap();
        for p in all_spec_profiles() {
            assert!(p.mpki <= mcf.mpki);
        }
    }
}
