//! STREAM-like workload profiles (§III-A).
//!
//! The paper uses the four STREAM kernels (add, copy, scale, triad) in 8-core rate mode
//! plus six mixed configurations (two kernels with four copies each). STREAM sweeps
//! large arrays sequentially, so nearly every access within a MOP chunk hits the open
//! row and the class is very sensitive to early row closure (Figure 3).

use crate::profile::{LocalityClass, WorkloadProfile};

/// The four STREAM kernels.
pub const STREAM_KERNELS: [&str; 4] = ["add", "copy", "scale", "triad"];

/// The six mixed STREAM workloads used in the paper's figures.
pub const STREAM_MIXES: [&str; 6] = [
    "add_copy",
    "add_scale",
    "add_triad",
    "copy_scale",
    "copy_triad",
    "scale_triad",
];

/// All ten STREAM workload names in figure order (kernels then mixes).
pub fn stream_names() -> Vec<&'static str> {
    STREAM_KERNELS
        .iter()
        .chain(STREAM_MIXES.iter())
        .copied()
        .collect()
}

/// Returns the profile of one STREAM kernel by name, or `None` if unknown.
///
/// Mixes are handled at the [`crate::mix::WorkloadMix`] level (half the cores run each
/// kernel); this function only knows the four base kernels.
pub fn stream_kernel_profile(name: &str) -> Option<WorkloadProfile> {
    // STREAM kernels differ in the ratio of loaded to stored streams:
    //   copy/scale: 1 load + 1 store;  add/triad: 2 loads + 1 store.
    let (mpki, writes, streams, kernel) = match name {
        "copy" => (95.0, 0.50, 2, "copy"),
        "scale" => (92.0, 0.50, 2, "scale"),
        "add" => (105.0, 0.34, 3, "add"),
        "triad" => (102.0, 0.34, 3, "triad"),
        _ => return None,
    };
    Some(WorkloadProfile {
        name: STREAM_KERNELS.iter().find(|&&n| n == kernel)?,
        class: LocalityClass::Stream,
        mpki,
        sequential_run_lines: 48.0,
        footprint_bytes: 1 << 30,
        write_fraction: writes,
        streams,
    })
}

/// The two kernels making up a mixed STREAM workload, or `None` if `name` is not a mix.
pub fn mix_components(name: &str) -> Option<(&'static str, &'static str)> {
    match name {
        "add_copy" => Some(("add", "copy")),
        "add_scale" => Some(("add", "scale")),
        "add_triad" => Some(("add", "triad")),
        "copy_scale" => Some(("copy", "scale")),
        "copy_triad" => Some(("copy", "triad")),
        "scale_triad" => Some(("scale", "triad")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_validate_and_are_stream_class() {
        for k in STREAM_KERNELS {
            let p = stream_kernel_profile(k).unwrap();
            p.validate().unwrap();
            assert_eq!(p.class, LocalityClass::Stream);
            // The defining property: long sequential runs and high memory intensity.
            assert!(p.sequential_run_lines >= 16.0);
            assert!(p.mpki >= 50.0);
        }
    }

    #[test]
    fn ten_stream_workloads_total() {
        assert_eq!(stream_names().len(), 10);
    }

    #[test]
    fn mixes_decompose_into_known_kernels() {
        for m in STREAM_MIXES {
            let (a, b) = mix_components(m).unwrap();
            assert!(stream_kernel_profile(a).is_some());
            assert!(stream_kernel_profile(b).is_some());
        }
        assert!(mix_components("add").is_none());
    }
}
