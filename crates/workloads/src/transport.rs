//! Networked trace transport: supervised socket sessions with offset resume.
//!
//! The wire protocol is a length-delimited chunk stream over TCP or
//! Unix-domain sockets, designed so that the canonical byte stream handed to
//! the codec is *identical* to reading the same trace from a file, no matter
//! how many disconnects, retries, or duplicate deliveries happened in
//! between. Verdict identity over a flaky network is therefore structural,
//! not probabilistic.
//!
//! ## Wire format (version 1)
//!
//! Client → server, on connect (16 bytes):
//!
//! ```text
//! HELLO:  "IMPS" | version u16 LE | flags u16 LE | start_offset u64 LE
//! ```
//!
//! Server → client reply (16 bytes):
//!
//! ```text
//! REPLY:  "IMPA" | version u16 LE | status u8 | reserved u8 | resume_offset u64 LE
//! ```
//!
//! `resume_offset` is the server's committed offset and is authoritative: the
//! client seeks its input there and resumes, regardless of what it announced.
//! After the handshake, tagged frames flow client → server:
//!
//! ```text
//! DATA(1):      tag u8 | offset u64 LE | len u32 LE | payload[len]
//! HEARTBEAT(2): tag u8
//! FIN(3):       tag u8 | total u64 LE
//! ```
//!
//! and server → client on the same connection:
//!
//! ```text
//! ACK(5):     tag u8 | committed u64 LE     (every `ack_every` bytes + on FIN)
//! GOODBYE(4): tag u8 | committed u64 LE     (graceful drain; not a crash)
//! ```
//!
//! The server commits bytes strictly in offset order and drops (or trims)
//! any DATA frame that overlaps what it already committed, so client
//! retransmission after a lost ack is harmless. A DATA offset *beyond* the
//! committed offset is a protocol violation: the server drops the connection
//! and the client reconnects and reseeks, which heals the gap.

use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::source::{DisconnectReason, FollowPolicy, TraceSource, TransportEvent};

/// Magic leading a client HELLO.
pub const HELLO_MAGIC: [u8; 4] = *b"IMPS";
/// Magic leading a server handshake reply.
pub const REPLY_MAGIC: [u8; 4] = *b"IMPA";
/// Wire protocol version spoken by this build.
pub const TRANSPORT_VERSION: u16 = 1;
/// Handshake message size (both directions).
pub const HANDSHAKE_BYTES: usize = 16;
/// Protocol cap on a single DATA frame payload; also bounds server staging.
pub const MAX_DATA_BYTES: usize = 256 * 1024;
/// Default client DATA payload size.
pub const DEFAULT_DATA_BYTES: usize = 32 * 1024;
/// Default server ack cadence in committed bytes.
pub const DEFAULT_ACK_EVERY: u64 = 128 * 1024;
/// Default client flow-control window (unacked bytes before blocking).
pub const DEFAULT_ACK_WINDOW: u64 = 1 << 20;
/// Default cap on sessions one `send_stream` call may open.
pub const DEFAULT_MAX_SESSIONS: u64 = 64;

const TAG_DATA: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_FIN: u8 = 3;
const TAG_GOODBYE: u8 = 4;
const TAG_ACK: u8 = 5;
pub(crate) const DATA_HEADER: usize = 13;

const STATUS_OK: u8 = 0;
const STATUS_BAD_VERSION: u8 = 1;

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn transport_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, msg.into())
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn conn_closed() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        "daemon closed the connection",
    )
}

/// A parsed transport address: `tcp://host:port` or `unix://path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP endpoint (`tcp://127.0.0.1:7700`).
    Tcp(String),
    /// Unix-domain stream endpoint (`unix:///run/impress.sock`).
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp://addr` / `unix://path`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for unknown schemes or empty addresses.
    pub fn parse(s: &str) -> io::Result<Self> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty tcp endpoint address",
                ));
            }
            Ok(Endpoint::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty unix endpoint path",
                ));
            }
            Ok(Endpoint::Unix(PathBuf::from(rest)))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("endpoint must start with tcp:// or unix://, got {s:?}"),
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// One stream connection, TCP or Unix — the byte pipe both endpoints share.
#[derive(Debug)]
pub enum Wire {
    /// A connected TCP stream.
    Tcp(TcpStream),
    /// A connected Unix-domain stream.
    Unix(UnixStream),
}

impl Wire {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates connect errors (refused, absent socket path, ...).
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Wire::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Unix(path) => Ok(Wire::Unix(UnixStream::connect(path)?)),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Wire::Tcp(s) => s.read(buf),
            Wire::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.write_all(buf),
            Wire::Unix(s) => s.write_all(buf),
        }
    }

    fn write_prefix(&mut self, buf: &[u8], keep: usize) -> io::Result<()> {
        self.write_all(&buf[..keep.min(buf.len())])
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        let t = t.map(|d| d.max(Duration::from_millis(1)));
        match self {
            Wire::Tcp(s) => s.set_read_timeout(t),
            Wire::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.set_nonblocking(on),
            Wire::Unix(s) => s.set_nonblocking(on),
        }
    }

    fn shutdown(&self) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Wire::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Wire::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

/// A bound, non-blocking accept socket for [`SocketSource`].
#[derive(Debug)]
pub enum Listener {
    /// Bound TCP listener.
    Tcp(TcpListener),
    /// Bound Unix-domain listener plus its path (unlinked on drop).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `endpoint` and switches the listener to non-blocking accepts.
    ///
    /// A stale Unix socket file at the path is unlinked first so daemon
    /// restarts can rebind.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            Endpoint::Unix(path) => {
                let _ = fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// The endpoint actually bound (resolves `tcp://…:0` to the real port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` errors.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, p) => Ok(Endpoint::Unix(p.clone())),
        }
    }

    fn accept(&self) -> io::Result<Option<Wire>> {
        let wire = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Wire::Tcp(s),
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Wire::Unix(s),
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        wire.set_nonblocking(false)?;
        Ok(Some(wire))
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = fs::remove_file(path);
        }
    }
}

fn hello_bytes(start_offset: u64) -> [u8; HANDSHAKE_BYTES] {
    let mut b = [0u8; HANDSHAKE_BYTES];
    b[..4].copy_from_slice(&HELLO_MAGIC);
    b[4..6].copy_from_slice(&TRANSPORT_VERSION.to_le_bytes());
    // b[6..8]: flags, reserved (zero).
    b[8..16].copy_from_slice(&start_offset.to_le_bytes());
    b
}

fn reply_bytes(status: u8, committed: u64) -> [u8; HANDSHAKE_BYTES] {
    let mut b = [0u8; HANDSHAKE_BYTES];
    b[..4].copy_from_slice(&REPLY_MAGIC);
    b[4..6].copy_from_slice(&TRANSPORT_VERSION.to_le_bytes());
    b[6] = status;
    b[8..16].copy_from_slice(&committed.to_le_bytes());
    b
}

fn tagged_u64(tag: u8, value: u64) -> [u8; 9] {
    let mut b = [0u8; 9];
    b[0] = tag;
    b[1..9].copy_from_slice(&value.to_le_bytes());
    b
}

/// Builds the wire bytes of one DATA frame.
fn data_frame(offset: u64, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(DATA_HEADER + payload.len());
    b.push(TAG_DATA);
    b.extend_from_slice(&offset.to_le_bytes());
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    b.extend_from_slice(payload);
    b
}

/// Tuning knobs for [`SocketSource`] beyond the reconnect policy.
#[derive(Debug, Clone, Copy)]
pub struct SocketTuning {
    /// Send an ACK each time this many new canonical bytes commit.
    pub ack_every: u64,
    /// How long a freshly accepted connection may take to complete the
    /// handshake before it is dropped as a protocol violation.
    pub handshake_timeout: Duration,
}

impl Default for SocketTuning {
    fn default() -> Self {
        Self {
            ack_every: DEFAULT_ACK_EVERY,
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

enum Frame {
    Data {
        offset: u64,
        start: usize,
        len: usize,
    },
    Heartbeat,
    Fin {
        total: u64,
    },
}

struct ServerConn {
    wire: Wire,
    session: u64,
    rbuf: Vec<u8>,
    rat: usize,
    idle: Duration,
    last_ack: u64,
}

impl ServerConn {
    fn new(wire: Wire, session: u64, committed: u64) -> Self {
        Self {
            wire,
            session,
            rbuf: Vec::with_capacity(64 * 1024),
            rat: 0,
            idle: Duration::ZERO,
            last_ack: committed,
        }
    }

    fn avail(&self) -> usize {
        self.rbuf.len() - self.rat
    }

    /// Parses one complete frame at the cursor, if buffered. For DATA the
    /// returned range indexes `rbuf` and stays valid until the next
    /// `read_more` (which compacts). `Err(())` is a protocol violation.
    fn try_frame(&mut self) -> Result<Option<Frame>, ()> {
        if self.avail() == 0 {
            return Ok(None);
        }
        let b = &self.rbuf[self.rat..];
        match b[0] {
            TAG_DATA => {
                if b.len() < DATA_HEADER {
                    return Ok(None);
                }
                let offset = u64::from_le_bytes(b[1..9].try_into().unwrap());
                let len = u32::from_le_bytes(b[9..13].try_into().unwrap()) as usize;
                if len > MAX_DATA_BYTES {
                    return Err(());
                }
                if b.len() < DATA_HEADER + len {
                    return Ok(None);
                }
                let start = self.rat + DATA_HEADER;
                self.rat += DATA_HEADER + len;
                Ok(Some(Frame::Data { offset, start, len }))
            }
            TAG_HEARTBEAT => {
                self.rat += 1;
                Ok(Some(Frame::Heartbeat))
            }
            TAG_FIN => {
                if b.len() < 9 {
                    return Ok(None);
                }
                let total = u64::from_le_bytes(b[1..9].try_into().unwrap());
                self.rat += 9;
                Ok(Some(Frame::Fin { total }))
            }
            _ => Err(()),
        }
    }

    /// Compacts consumed bytes, then appends whatever arrives within
    /// `timeout`. `Ok(0)` is EOF; timeouts surface as `WouldBlock`/`TimedOut`.
    fn read_more(&mut self, timeout: Duration) -> io::Result<usize> {
        if self.rat > 0 {
            self.rbuf.drain(..self.rat);
            self.rat = 0;
        }
        self.wire.set_read_timeout(Some(timeout))?;
        let mut scratch = [0u8; 16 * 1024];
        let n = self.wire.read(&mut scratch)?;
        self.rbuf.extend_from_slice(&scratch[..n]);
        Ok(n)
    }

    fn send_ack(&mut self, committed: u64) -> io::Result<()> {
        self.last_ack = committed;
        self.wire.write_all(&tagged_u64(TAG_ACK, committed))
    }
}

/// A [`TraceSource`] fed by a socket accept loop with session resume.
///
/// The source owns a bound [`Listener`] and supervises one producer
/// connection at a time: handshake (offset negotiation), per-read timeouts
/// with heartbeat/idle detection, dedup-by-offset so retransmitted bytes
/// never reach the codec twice, acks every [`SocketTuning::ack_every`]
/// committed bytes, and accept-loop reconnect supervision driven by
/// [`FollowPolicy`]'s capped exponential backoff. Staging is bounded by one
/// DATA frame ([`MAX_DATA_BYTES`]).
///
/// Every disconnect, stall, resumed session, duplicate drop, and graceful
/// drain is recorded as a [`TransportEvent`] and drained via
/// [`TraceSource::take_transport_events`].
#[derive(Debug)]
pub struct SocketSource {
    listener: Listener,
    policy: FollowPolicy,
    tuning: SocketTuning,
    #[allow(clippy::struct_field_names)]
    conn: Option<ServerConnBox>,
    stage: Vec<u8>,
    events: Vec<TransportEvent>,
    committed: u64,
    sessions: u64,
    finished: bool,
    drained: bool,
    drain: Option<&'static AtomicBool>,
}

// Keeps SocketSource's Debug derive happy without exposing conn internals.
struct ServerConnBox(ServerConn);

impl fmt::Debug for ServerConnBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerConn")
            .field("session", &self.0.session)
            .field("buffered", &self.0.avail())
            .finish()
    }
}

impl SocketSource {
    /// Wraps a bound listener with reconnect policy `policy`.
    pub fn new(listener: Listener, policy: FollowPolicy) -> Self {
        Self {
            listener,
            policy,
            tuning: SocketTuning::default(),
            conn: None,
            stage: Vec::new(),
            events: Vec::new(),
            committed: 0,
            sessions: 0,
            finished: false,
            drained: false,
            drain: None,
        }
    }

    /// Overrides ack cadence / handshake deadline.
    #[must_use]
    pub fn with_tuning(mut self, tuning: SocketTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a drain flag: once it reads `true`, the source sends a
    /// protocol GOODBYE to any connected client and reports end-of-stream,
    /// letting the daemon finish the in-flight batch and emit its verdict.
    /// (`&'static` so a signal handler can own the flag; leak one with
    /// `Box::leak` in tests.)
    #[must_use]
    pub fn with_drain_flag(mut self, flag: &'static AtomicBool) -> Self {
        self.drain = Some(flag);
        self
    }

    /// The endpoint actually bound (resolves TCP port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` errors.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        self.listener.local_endpoint()
    }

    /// Canonical bytes committed (delivered to the codec) so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of producer sessions accepted so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    fn drain_requested(&self) -> bool {
        self.drain.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    fn poll_interval(&self) -> Duration {
        (self.policy.idle_limit / 50).clamp(Duration::from_millis(1), Duration::from_millis(25))
    }

    fn drop_conn(&mut self, reason: DisconnectReason) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.0.wire.shutdown();
            self.events.push(TransportEvent::Disconnected {
                session: conn.0.session,
                offset: self.committed,
                reason,
            });
        }
    }

    fn goodbye(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = conn
                .0
                .wire
                .write_all(&tagged_u64(TAG_GOODBYE, self.committed));
            let _ = conn.0.wire.shutdown();
        }
        if !self.drained {
            self.drained = true;
            self.events.push(TransportEvent::Drained {
                offset: self.committed,
            });
        }
        self.finished = true;
    }

    /// Waits for a producer to connect and complete the handshake. Returns
    /// `false` on idle-out (no producer within `idle_limit`) or when a drain
    /// was requested mid-wait.
    fn accept_session(&mut self) -> io::Result<bool> {
        let mut idle = Duration::ZERO;
        let mut backoff = self.policy.initial_backoff;
        loop {
            if self.drain_requested() {
                return Ok(false);
            }
            match self.listener.accept()? {
                Some(wire) => {
                    self.sessions += 1;
                    let session = self.sessions;
                    match self.handshake_server(wire, session) {
                        Ok(conn) => {
                            if session > 1 || self.committed > 0 {
                                self.events.push(TransportEvent::SessionResumed {
                                    session,
                                    offset: self.committed,
                                });
                            }
                            self.conn = Some(ServerConnBox(conn));
                            return Ok(true);
                        }
                        Err(reason) => {
                            self.events.push(TransportEvent::Disconnected {
                                session,
                                offset: self.committed,
                                reason,
                            });
                            // Keep waiting for a well-behaved producer.
                        }
                    }
                }
                None => {
                    if idle >= self.policy.idle_limit {
                        return Ok(false);
                    }
                    std::thread::sleep(backoff);
                    idle += backoff;
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
    }

    /// Reads and validates the 16-byte HELLO, replies with the committed
    /// offset. On failure returns the disconnect reason for the ledger.
    fn handshake_server(
        &self,
        mut wire: Wire,
        session: u64,
    ) -> Result<ServerConn, DisconnectReason> {
        let mut hello = [0u8; HANDSHAKE_BYTES];
        let mut got = 0;
        let deadline = Instant::now() + self.tuning.handshake_timeout;
        let poll = self.poll_interval();
        while got < HANDSHAKE_BYTES {
            if wire.set_read_timeout(Some(poll)).is_err() {
                return Err(DisconnectReason::Io);
            }
            match wire.read(&mut hello[got..]) {
                Ok(0) => return Err(DisconnectReason::Eof),
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(DisconnectReason::Stall);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(DisconnectReason::Io),
            }
        }
        if hello[..4] != HELLO_MAGIC {
            return Err(DisconnectReason::Protocol);
        }
        let version = u16::from_le_bytes(hello[4..6].try_into().unwrap());
        if version != TRANSPORT_VERSION {
            let _ = wire.write_all(&reply_bytes(STATUS_BAD_VERSION, self.committed));
            return Err(DisconnectReason::Protocol);
        }
        if wire
            .write_all(&reply_bytes(STATUS_OK, self.committed))
            .is_err()
        {
            return Err(DisconnectReason::Io);
        }
        Ok(ServerConn::new(wire, session, self.committed))
    }

    /// Commits one DATA frame: trims or drops bytes the server already
    /// committed, stages the new suffix. Returns `true` if bytes were staged.
    fn stage_data(&mut self, offset: u64, start: usize, len: usize) -> bool {
        let Self {
            conn,
            stage,
            events,
            committed,
            tuning,
            ..
        } = self;
        let conn = &mut conn.as_mut().expect("connection present").0;
        let Some(end) = offset.checked_add(len as u64) else {
            // Offset arithmetic overflow is a protocol violation.
            drop_conn_inline(conn, events, *committed, DisconnectReason::Protocol);
            self.conn = None;
            return false;
        };
        if offset > *committed {
            // A gap means lost bytes we never acked: force a reconnect so the
            // client reseeks to the committed offset.
            drop_conn_inline(conn, events, *committed, DisconnectReason::Protocol);
            self.conn = None;
            return false;
        }
        let skip = (*committed - offset) as usize;
        if skip >= len {
            events.push(TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: *committed,
                bytes: len as u64,
            });
            // Re-ack so a client that missed the original ack advances.
            if conn.send_ack(*committed).is_err() {
                drop_conn_inline(conn, events, *committed, DisconnectReason::Io);
                self.conn = None;
            }
            return false;
        }
        if skip > 0 {
            events.push(TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: *committed,
                bytes: skip as u64,
            });
        }
        stage.clear();
        stage.extend_from_slice(&conn.rbuf[start + skip..start + len]);
        *committed = end;
        let ack_due = *committed - conn.last_ack >= tuning.ack_every;
        if ack_due && conn.send_ack(*committed).is_err() {
            drop_conn_inline(conn, events, *committed, DisconnectReason::Io);
            self.conn = None;
        }
        true
    }

    fn handle_fin(&mut self, total: u64) {
        if total == self.committed {
            if let Some(conn) = self.conn.as_mut() {
                let _ = conn.0.send_ack(total);
            }
            self.conn = None;
            self.finished = true;
        } else {
            // The client believes a different amount was delivered; force a
            // resync through reconnect.
            self.drop_conn(DisconnectReason::Protocol);
        }
    }

    fn pump(&mut self) -> io::Result<()> {
        let poll = self.poll_interval();
        let idle_limit = self.policy.idle_limit;
        let committed = self.committed;
        let reason = {
            let conn = &mut self.conn.as_mut().expect("connection present").0;
            match conn.read_more(poll) {
                Ok(0) => Some(DisconnectReason::Eof),
                Ok(_) => {
                    conn.idle = Duration::ZERO;
                    None
                }
                Err(e) if is_timeout(&e) => {
                    conn.idle += poll;
                    // A quiet producer may be blocked on flow control with a
                    // send window smaller than our ack cadence; flush the ack
                    // for whatever is committed so it can make progress.
                    if committed > conn.last_ack {
                        let _ = conn.send_ack(committed);
                    }
                    if conn.idle >= idle_limit {
                        Some(DisconnectReason::Stall)
                    } else {
                        None
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => None,
                Err(_) => Some(DisconnectReason::Io),
            }
        };
        if let Some(reason) = reason {
            self.drop_conn(reason);
        }
        Ok(())
    }
}

fn drop_conn_inline(
    conn: &mut ServerConn,
    events: &mut Vec<TransportEvent>,
    committed: u64,
    reason: DisconnectReason,
) {
    let _ = conn.wire.shutdown();
    events.push(TransportEvent::Disconnected {
        session: conn.session,
        offset: committed,
        reason,
    });
}

impl TraceSource for SocketSource {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        loop {
            if self.drain_requested() && !self.finished {
                self.goodbye();
                return Ok(None);
            }
            if self.finished {
                return Ok(None);
            }
            if self.conn.is_none() {
                if self.accept_session()? {
                    continue;
                }
                if self.drain_requested() {
                    continue; // goodbye at loop top
                }
                return Ok(None); // idled out with no producer
            }
            let parsed = self
                .conn
                .as_mut()
                .expect("connection present")
                .0
                .try_frame();
            match parsed {
                Ok(Some(Frame::Data { offset, start, len })) => {
                    if self.stage_data(offset, start, len) {
                        return Ok(Some(&self.stage));
                    }
                }
                Ok(Some(Frame::Heartbeat)) => {}
                Ok(Some(Frame::Fin { total })) => self.handle_fin(total),
                Ok(None) => self.pump()?,
                Err(()) => self.drop_conn(DisconnectReason::Protocol),
            }
        }
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }
}

/// A server → client control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReply {
    /// The server committed bytes up to this offset.
    Ack(u64),
    /// Graceful shutdown at this committed offset — stop retrying.
    Goodbye(u64),
}

/// Client half of one transport session: framed sends plus reply reads.
///
/// [`WireLink`] is the real implementation;
/// [`FaultTransport`](crate::faults::FaultTransport) wraps it to inject
/// connection-level faults in tests.
pub trait ClientLink {
    /// Sends HELLO announcing `start_offset` and returns the server's
    /// authoritative resume offset.
    ///
    /// # Errors
    ///
    /// I/O errors, handshake timeout, or a version rejection.
    fn handshake(&mut self, start_offset: u64, timeout: Duration) -> io::Result<u64>;

    /// Sends one DATA frame carrying `payload` at stream `offset`.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_data(&mut self, offset: u64, payload: &[u8]) -> io::Result<()>;

    /// Sends a HEARTBEAT keep-alive.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_heartbeat(&mut self) -> io::Result<()>;

    /// Sends FIN declaring the total stream length.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_fin(&mut self, total: u64) -> io::Result<()>;

    /// Reads one server reply. `wait: None` polls without blocking; with a
    /// timeout, returns `Ok(None)` if nothing arrived in time.
    ///
    /// # Errors
    ///
    /// Socket read errors or malformed replies.
    fn recv_reply(&mut self, wait: Option<Duration>) -> io::Result<Option<ServerReply>>;
}

/// The concrete [`ClientLink`] over a [`Wire`].
#[derive(Debug)]
pub struct WireLink {
    wire: Wire,
    rbuf: Vec<u8>,
    rat: usize,
}

impl WireLink {
    /// Connects a fresh link to `endpoint` (handshake not yet performed).
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        Ok(Self {
            wire: Wire::connect(endpoint)?,
            rbuf: Vec::new(),
            rat: 0,
        })
    }

    /// Sends only the first `keep` wire bytes of a DATA frame, then reports
    /// the connection dead. Fault-injection hook for `ShortWrite`.
    pub(crate) fn send_data_prefix(
        &mut self,
        offset: u64,
        payload: &[u8],
        keep: usize,
    ) -> io::Result<()> {
        let frame = data_frame(offset, payload);
        self.wire.write_prefix(&frame, keep)?;
        self.sever();
        Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected short write",
        ))
    }

    /// Severs the link for fault injection without destroying in-flight
    /// data: shuts down only the write side, so everything already written
    /// still reaches the server, then drains incoming replies until the
    /// server closes. Closing a socket with unread bytes in its receive
    /// queue resets the connection and can tear down data the peer has not
    /// read yet — which would make the delivered prefix racy instead of
    /// exact.
    pub(crate) fn sever(&mut self) {
        let _ = self.wire.shutdown_write();
        let _ = self.wire.set_read_timeout(Some(Duration::from_secs(2)));
        let mut scratch = [0u8; 1024];
        loop {
            match self.wire.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    fn parse_reply(&mut self) -> io::Result<Option<ServerReply>> {
        let avail = self.rbuf.len() - self.rat;
        if avail == 0 {
            return Ok(None);
        }
        let b = &self.rbuf[self.rat..];
        match b[0] {
            TAG_ACK | TAG_GOODBYE if b.len() >= 9 => {
                let v = u64::from_le_bytes(b[1..9].try_into().unwrap());
                let tag = b[0];
                self.rat += 9;
                Ok(Some(if tag == TAG_ACK {
                    ServerReply::Ack(v)
                } else {
                    ServerReply::Goodbye(v)
                }))
            }
            TAG_ACK | TAG_GOODBYE => Ok(None),
            t => Err(protocol_err(format!("unexpected reply tag {t}"))),
        }
    }

    fn read_replies(&mut self, wait: Option<Duration>) -> io::Result<usize> {
        if self.rat > 0 {
            self.rbuf.drain(..self.rat);
            self.rat = 0;
        }
        let mut scratch = [0u8; 1024];
        let n = match wait {
            None => {
                self.wire.set_nonblocking(true)?;
                let r = self.wire.read(&mut scratch);
                self.wire.set_nonblocking(false)?;
                match r {
                    // A zero-byte read is peer EOF, not "nothing available":
                    // surface it so callers reconnect instead of spinning.
                    Ok(0) => return Err(conn_closed()),
                    Ok(n) => n,
                    Err(e) if is_timeout(&e) => 0,
                    Err(e) => return Err(e),
                }
            }
            Some(t) => {
                self.wire.set_read_timeout(Some(t))?;
                match self.wire.read(&mut scratch) {
                    Ok(0) => return Err(conn_closed()),
                    Ok(n) => n,
                    Err(e) if is_timeout(&e) => 0,
                    Err(e) => return Err(e),
                }
            }
        };
        if n > 0 {
            self.rbuf.extend_from_slice(&scratch[..n]);
        }
        Ok(n)
    }
}

impl ClientLink for WireLink {
    fn handshake(&mut self, start_offset: u64, timeout: Duration) -> io::Result<u64> {
        self.wire.write_all(&hello_bytes(start_offset))?;
        let mut reply = [0u8; HANDSHAKE_BYTES];
        let mut got = 0;
        let deadline = Instant::now() + timeout;
        let poll = Duration::from_millis(10);
        while got < HANDSHAKE_BYTES {
            self.wire.set_read_timeout(Some(poll))?;
            match self.wire.read(&mut reply[got..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "daemon closed the connection during handshake",
                    ))
                }
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(transport_err("handshake timed out"));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if reply[..4] != REPLY_MAGIC {
            return Err(protocol_err("bad handshake reply magic"));
        }
        let version = u16::from_le_bytes(reply[4..6].try_into().unwrap());
        if version != TRANSPORT_VERSION {
            return Err(protocol_err(format!(
                "daemon speaks transport version {version}, client speaks {TRANSPORT_VERSION}"
            )));
        }
        if reply[6] != STATUS_OK {
            return Err(protocol_err(format!(
                "daemon rejected the session (status {})",
                reply[6]
            )));
        }
        Ok(u64::from_le_bytes(reply[8..16].try_into().unwrap()))
    }

    fn send_data(&mut self, offset: u64, payload: &[u8]) -> io::Result<()> {
        self.wire.write_all(&data_frame(offset, payload))
    }

    fn send_heartbeat(&mut self) -> io::Result<()> {
        self.wire.write_all(&[TAG_HEARTBEAT])
    }

    fn send_fin(&mut self, total: u64) -> io::Result<()> {
        self.wire.write_all(&tagged_u64(TAG_FIN, total))
    }

    fn recv_reply(&mut self, wait: Option<Duration>) -> io::Result<Option<ServerReply>> {
        if let Some(r) = self.parse_reply()? {
            return Ok(Some(r));
        }
        if self.read_replies(wait)? == 0 {
            return Ok(None);
        }
        self.parse_reply()
    }
}

/// Client-side input stream for [`send_stream`].
///
/// Offset resume across daemon restarts needs a seekable input; FIFOs and
/// stdin can only skip forward.
pub trait SendInput {
    /// Positions the cursor at absolute `offset`.
    ///
    /// # Errors
    ///
    /// `Unsupported` when a non-seekable input would have to rewind.
    fn seek_to(&mut self, offset: u64) -> io::Result<()>;

    /// Reads the next bytes at the cursor; `Ok(0)` means end-of-input (for
    /// now — a growing file may return more later).
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// Seekable [`SendInput`] over a [`fs::File`].
#[derive(Debug)]
pub struct FileInput {
    file: fs::File,
    at: u64,
}

impl FileInput {
    /// Opens `path` for sending.
    ///
    /// # Errors
    ///
    /// Propagates open errors.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self {
            file: fs::File::open(path)?,
            at: 0,
        })
    }
}

impl SendInput for FileInput {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.at = offset;
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.file.read(buf)?;
        self.at += n as u64;
        Ok(n)
    }
}

/// Forward-only [`SendInput`] over any reader (FIFOs, stdin).
#[derive(Debug)]
pub struct ReaderInput<R: Read> {
    inner: R,
    at: u64,
}

impl<R: Read> ReaderInput<R> {
    /// Wraps `inner` with the cursor at 0.
    pub fn new(inner: R) -> Self {
        Self { inner, at: 0 }
    }
}

impl<R: Read> SendInput for ReaderInput<R> {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        if offset < self.at {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "daemon requested resume from byte {offset} but this input \
                     is not seekable (cursor already at {})",
                    self.at
                ),
            ));
        }
        let mut remaining = offset - self.at;
        let mut scratch = [0u8; 16 * 1024];
        while remaining > 0 {
            let want = scratch.len().min(remaining as usize);
            let n = self.inner.read(&mut scratch[..want])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "input ended while skipping to the daemon's resume offset",
                ));
            }
            remaining -= n as u64;
            self.at += n as u64;
        }
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.at += n as u64;
        Ok(n)
    }
}

/// Fully seekable in-memory [`SendInput`] (tests, small traces).
#[derive(Debug)]
pub struct MemInput {
    data: Vec<u8>,
    at: u64,
}

impl MemInput {
    /// Serves `data` from offset 0.
    pub fn new(data: Vec<u8>) -> Self {
        Self { data, at: 0 }
    }
}

impl SendInput for MemInput {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        if offset > self.data.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "resume offset beyond input length",
            ));
        }
        self.at = offset;
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.data[self.at as usize..];
        let n = buf.len().min(rest.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.at += n as u64;
        Ok(n)
    }
}

/// Behavior knobs for [`send_stream`].
#[derive(Debug, Clone, Copy)]
pub struct SendOptions {
    /// Reconnect backoff and idle/ack-wait limits (reuses the daemon's
    /// follow policy shape).
    pub policy: FollowPolicy,
    /// Reconnect and resend after transport errors instead of giving up.
    pub retry: bool,
    /// Payload bytes per DATA frame.
    pub data_bytes: usize,
    /// Unacked-byte window before the sender blocks waiting for an ack
    /// (client-side flow control; bounds the daemon's staging backlog).
    pub ack_window: u64,
    /// Keep polling the input for growth at EOF (FIFO/tailed-file mode)
    /// until it stays idle for `policy.idle_limit`, then FIN.
    pub follow: bool,
    /// Hard cap on sessions opened before giving up (termination backstop).
    pub max_sessions: u64,
}

impl Default for SendOptions {
    fn default() -> Self {
        Self {
            policy: FollowPolicy::default(),
            retry: true,
            data_bytes: DEFAULT_DATA_BYTES,
            ack_window: DEFAULT_ACK_WINDOW,
            follow: false,
            max_sessions: DEFAULT_MAX_SESSIONS,
        }
    }
}

/// What a [`send_stream`] call accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendOutcome {
    /// Bytes the daemon acknowledged as committed.
    pub acked: u64,
    /// Sessions opened (1 = no reconnects).
    pub sessions: u64,
    /// Bytes re-sent below the high-water mark after reconnects.
    pub retransmitted: u64,
    /// The daemon sent a protocol GOODBYE (graceful shutdown, not a crash).
    pub goodbye: bool,
    /// FIN was acknowledged: the daemon committed the entire input.
    pub complete: bool,
}

enum SessionEnd {
    /// The stream finished (FIN acked) or the daemon said goodbye.
    Done,
    /// Transport failure; reconnect if retrying.
    Lost(io::Error),
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_session<I: SendInput, L: ClientLink>(
    link: &mut L,
    input: &mut I,
    options: &SendOptions,
    offset: &mut u64,
    last_ack: &mut u64,
    high_water: &mut u64,
    outcome: &mut SendOutcome,
    chunk: &mut [u8],
) -> io::Result<SessionEnd> {
    macro_rules! lnk {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(e) => return Ok(SessionEnd::Lost(e)),
            }
        };
    }
    let poll = Duration::from_millis(20).min(options.policy.idle_limit);
    let heartbeat_every = options.policy.max_backoff.max(Duration::from_millis(1));
    let mut fin_at: Option<u64> = None;
    let mut input_idle = Duration::ZERO;
    let mut ack_wait = Duration::ZERO;
    // Folds one reply into the session state; `true` means the daemon said
    // goodbye and the session (and the whole send) is over.
    let mut saw_goodbye = false;
    macro_rules! apply {
        ($reply:expr) => {
            match $reply {
                ServerReply::Ack(a) => {
                    if a > *last_ack {
                        *last_ack = a;
                        ack_wait = Duration::ZERO;
                    }
                }
                ServerReply::Goodbye(a) => {
                    if a > *last_ack {
                        *last_ack = a;
                    }
                    outcome.goodbye = true;
                    saw_goodbye = true;
                }
            }
        };
    }
    loop {
        // Completion first: a FIN ack already applied must win over any
        // subsequent EOF the daemon sends when it closes the connection.
        if let Some(total) = fin_at {
            if *last_ack >= total {
                outcome.complete = true;
                return Ok(SessionEnd::Done);
            }
        }
        if saw_goodbye {
            return Ok(SessionEnd::Done);
        }
        // Drain whatever replies already arrived. Stop as soon as the stream
        // is complete: the daemon closes right after the final ack, and one
        // more read would turn that EOF into a spurious session loss.
        while let Some(reply) = lnk!(link.recv_reply(None)) {
            apply!(reply);
            if saw_goodbye || fin_at.is_some_and(|total| *last_ack >= total) {
                break;
            }
        }
        if saw_goodbye {
            continue; // completion check at loop top
        }
        if fin_at.is_some() || *offset - *last_ack >= options.ack_window {
            // FIN pending or flow-control window full: block for an ack.
            if fin_at.is_some() && *last_ack >= fin_at.unwrap_or(0) {
                continue; // the drain above just completed the stream
            }
            match lnk!(link.recv_reply(Some(poll))) {
                Some(reply) => apply!(reply),
                None => {
                    ack_wait += poll;
                    if ack_wait >= options.policy.idle_limit {
                        return Ok(SessionEnd::Lost(transport_err(
                            "daemon stopped acking before the stream completed",
                        )));
                    }
                }
            }
            continue;
        }
        // Pump input.
        let n = input.read_more(chunk)?;
        if n > 0 {
            if *offset < *high_water {
                outcome.retransmitted += (n as u64).min(*high_water - *offset);
            }
            lnk!(link.send_data(*offset, &chunk[..n]));
            *offset += n as u64;
            *high_water = (*high_water).max(*offset);
            input_idle = Duration::ZERO;
            continue;
        }
        // EOF: in follow mode, heartbeat and poll for growth first.
        if options.follow && input_idle < options.policy.idle_limit {
            lnk!(link.send_heartbeat());
            std::thread::sleep(heartbeat_every);
            input_idle += heartbeat_every;
            continue;
        }
        lnk!(link.send_fin(*offset));
        fin_at = Some(*offset);
        ack_wait = Duration::ZERO;
    }
}

/// Streams `input` to a daemon with retry/backoff and offset resume.
///
/// `dial` opens a fresh (unhandshaken) [`ClientLink`] per session; the
/// handshake's resume offset repositions the input, so reconnects — including
/// across a daemon restart with `--resume` — deliver exactly the canonical
/// byte stream. Returns once FIN is acked, the daemon says GOODBYE, or
/// retries are exhausted.
///
/// # Errors
///
/// Input read/seek errors are returned as-is; transport failures surface as
/// `TimedOut`-class errors once the retry budget (consecutive downtime
/// exceeding `policy.idle_limit`, or `max_sessions`) is spent. With
/// `retry: false` the first transport failure is returned directly.
pub fn send_stream<I, L, D>(
    input: &mut I,
    mut dial: D,
    options: &SendOptions,
) -> io::Result<SendOutcome>
where
    I: SendInput,
    L: ClientLink,
    D: FnMut() -> io::Result<L>,
{
    let mut outcome = SendOutcome::default();
    let mut chunk = vec![0u8; options.data_bytes.clamp(1, MAX_DATA_BYTES)];
    let mut believed = 0u64;
    let mut high_water = 0u64;
    let mut downtime = Duration::ZERO;
    let mut backoff = options.policy.initial_backoff.max(Duration::from_millis(1));
    loop {
        if outcome.sessions >= options.max_sessions {
            return Err(transport_err(format!(
                "gave up after {} sessions without completing the stream",
                outcome.sessions
            )));
        }
        let dialed = dial().and_then(|mut link| {
            let resume = link.handshake(believed, options.policy.idle_limit)?;
            Ok((link, resume))
        });
        let (mut link, resume) = match dialed {
            Ok(ok) => ok,
            Err(e) => {
                if !options.retry {
                    return Err(e);
                }
                if downtime >= options.policy.idle_limit {
                    return Err(transport_err(format!(
                        "connection failed after retries ({e})"
                    )));
                }
                std::thread::sleep(backoff);
                downtime += backoff;
                backoff = (backoff * 2).min(options.policy.max_backoff.max(backoff));
                continue;
            }
        };
        outcome.sessions += 1;
        downtime = Duration::ZERO;
        backoff = options.policy.initial_backoff.max(Duration::from_millis(1));
        input.seek_to(resume)?;
        let mut offset = resume;
        let mut last_ack = resume;
        match run_session(
            &mut link,
            input,
            options,
            &mut offset,
            &mut last_ack,
            &mut high_water,
            &mut outcome,
            &mut chunk,
        )? {
            SessionEnd::Done => {
                outcome.acked = last_ack;
                return Ok(outcome);
            }
            SessionEnd::Lost(e) => {
                if !options.retry {
                    return Err(e);
                }
                believed = last_ack;
            }
        }
    }
}

/// [`send_stream`] over real sockets: dials `endpoint` with [`WireLink`].
///
/// # Errors
///
/// See [`send_stream`].
pub fn send_to(
    endpoint: &Endpoint,
    input: &mut impl SendInput,
    options: &SendOptions,
) -> io::Result<SendOutcome> {
    let ep = endpoint.clone();
    send_stream(input, move || WireLink::connect(&ep), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn fast_policy() -> FollowPolicy {
        FollowPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            idle_limit: Duration::from_secs(5),
        }
    }

    fn drain_all(src: &mut SocketSource) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            out.extend_from_slice(c);
        }
        out
    }

    fn unix_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("impress-transport-{tag}-{}", std::process::id()))
    }

    #[test]
    fn endpoint_parse_roundtrip() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7700").unwrap(),
            Endpoint::Tcp("127.0.0.1:7700".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///run/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/run/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp://10.0.0.1:9").unwrap().to_string(),
            "tcp://10.0.0.1:9"
        );
        assert!(Endpoint::parse("udp://x").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("unix://").is_err());
    }

    #[test]
    fn loopback_tcp_roundtrip_with_fin() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            let mut input = MemInput::new(payload);
            let options = SendOptions {
                policy: fast_policy(),
                data_bytes: 4096,
                ..SendOptions::default()
            };
            send_to(&ep, &mut input, &options).unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got, expect);
        assert!(outcome.complete);
        assert_eq!(outcome.sessions, 1);
        assert_eq!(outcome.acked, expect.len() as u64);
        assert!(src.take_transport_events().is_empty());
    }

    #[test]
    fn loopback_unix_roundtrip_with_fin() {
        let path = unix_path("unix-roundtrip");
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            let mut input = MemInput::new(payload);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: fast_policy(),
                    data_bytes: 1000,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        assert!(client.join().unwrap().complete);
        assert_eq!(got, expect);
        assert!(
            !path.exists() || {
                drop(src);
                !path.exists()
            }
        );
    }

    #[test]
    fn server_dedups_retransmitted_bytes() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let client = thread::spawn(move || {
            let mut link = WireLink::connect(&ep).unwrap();
            let resume = link.handshake(0, Duration::from_secs(5)).unwrap();
            assert_eq!(resume, 0);
            link.send_data(0, &[1u8; 100]).unwrap();
            // Full duplicate, then an overlapping frame with a fresh suffix.
            link.send_data(0, &[1u8; 100]).unwrap();
            let mut mixed = vec![1u8; 50];
            mixed.extend_from_slice(&[2u8; 60]);
            link.send_data(50, &mixed).unwrap();
            link.send_fin(160).unwrap();
            loop {
                match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                    Some(ServerReply::Ack(a)) if a >= 160 => break,
                    Some(_) | None => {}
                }
            }
        });
        let got = drain_all(&mut src);
        client.join().unwrap();
        let mut expect = vec![1u8; 100];
        expect.extend_from_slice(&[2u8; 60]);
        assert_eq!(got, expect);
        let events = src.take_transport_events();
        let dup_bytes: u64 = events
            .iter()
            .map(|e| match e {
                TransportEvent::DuplicateDropped { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(dup_bytes, 150, "events: {events:?}");
    }

    #[test]
    fn reconnect_resumes_from_committed_offset() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        // Tight ack cadence so session 1 can observe its prefix committing.
        let mut src = SocketSource::new(listener, fast_policy()).with_tuning(SocketTuning {
            ack_every: 1024,
            ..SocketTuning::default()
        });
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 239) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            // Session 1: deliver a prefix, then vanish without FIN.
            let mut link = WireLink::connect(&ep).unwrap();
            link.handshake(0, Duration::from_secs(5)).unwrap();
            link.send_data(0, &payload[..10_000]).unwrap();
            loop {
                // Wait until the prefix is committed (acked) so the resume
                // offset is deterministic.
                match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                    Some(ServerReply::Ack(a)) if a >= 10_000 => break,
                    _ => {}
                }
            }
            drop(link);
            // Session 2: announce a stale offset; the server's reply wins.
            let mut input = MemInput::new(payload);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: fast_policy(),
                    data_bytes: 4096,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got, expect);
        assert!(outcome.complete);
        let events = src.take_transport_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                TransportEvent::Disconnected {
                    reason: DisconnectReason::Eof,
                    ..
                }
            )),
            "events: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TransportEvent::SessionResumed { offset: 10_000, .. })),
            "events: {events:?}"
        );
    }

    #[test]
    fn idle_listener_times_out_cleanly() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let mut src = SocketSource::new(
            listener,
            FollowPolicy {
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
                idle_limit: Duration::from_millis(40),
            },
        );
        assert!(src.next_chunk().unwrap().is_none());
        assert!(src.take_transport_events().is_empty());
    }

    #[test]
    fn drain_flag_sends_goodbye_and_ends_stream() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy()).with_drain_flag(flag);
        let client = thread::spawn(move || {
            let mut link = WireLink::connect(&ep).unwrap();
            link.handshake(0, Duration::from_secs(5)).unwrap();
            link.send_data(0, &[7u8; 500]).unwrap();
            // Heartbeat-idle until the goodbye arrives.
            loop {
                match link.recv_reply(Some(Duration::from_millis(20))).unwrap() {
                    Some(ServerReply::Goodbye(g)) => return g,
                    Some(ServerReply::Ack(_)) => {}
                    None => link.send_heartbeat().unwrap(),
                }
            }
        });
        let first = src.next_chunk().unwrap().unwrap().to_vec();
        assert_eq!(first, vec![7u8; 500]);
        flag.store(true, Ordering::SeqCst);
        assert!(src.next_chunk().unwrap().is_none());
        let committed = client.join().unwrap();
        assert_eq!(committed, 500);
        let events = src.take_transport_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TransportEvent::Drained { offset: 500 })),
            "events: {events:?}"
        );
    }

    #[test]
    fn follow_mode_sender_fins_after_input_goes_idle() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let client = thread::spawn(move || {
            let mut input = MemInput::new(vec![3u8; 2000]);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: FollowPolicy {
                        initial_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(5),
                        idle_limit: Duration::from_millis(50),
                    },
                    follow: true,
                    data_bytes: 512,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got.len(), 2000);
        assert!(outcome.complete);
    }

    #[test]
    fn reader_input_skips_forward_but_never_rewinds() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut input = ReaderInput::new(&data[..]);
        input.seek_to(10).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(input.read_more(&mut buf).unwrap(), 4);
        assert_eq!(&buf, &[10, 11, 12, 13]);
        let err = input.seek_to(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn no_retry_client_reports_connect_failure() {
        // Nothing is listening on this endpoint (bound then dropped).
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        drop(listener);
        let mut input = MemInput::new(vec![0u8; 16]);
        let err = send_to(
            &ep,
            &mut input,
            &SendOptions {
                retry: false,
                ..SendOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.kind() == io::ErrorKind::ConnectionRefused || is_timeout(&err));
    }

    #[test]
    fn retry_client_gives_up_after_idle_budget() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        drop(listener);
        let mut input = MemInput::new(vec![0u8; 16]);
        let err = send_to(
            &ep,
            &mut input,
            &SendOptions {
                retry: true,
                policy: FollowPolicy {
                    initial_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(5),
                    idle_limit: Duration::from_millis(30),
                },
                ..SendOptions::default()
            },
        )
        .unwrap_err();
        assert!(is_timeout(&err), "got {err:?}");
    }
}
