//! Networked trace transport: supervised socket sessions with offset resume.
//!
//! The wire protocol is a length-delimited chunk stream over TCP or
//! Unix-domain sockets, designed so that the canonical byte stream handed to
//! the codec is *identical* to reading the same trace from a file, no matter
//! how many disconnects, retries, or duplicate deliveries happened in
//! between. Verdict identity over a flaky network is therefore structural,
//! not probabilistic.
//!
//! ## Wire format (version 2)
//!
//! Client → server, on connect (24 bytes):
//!
//! ```text
//! HELLO:  "IMPS" | version u16 LE | flags u16 LE | start_offset u64 LE | tenant u64 LE
//! ```
//!
//! Server → client reply (24 bytes):
//!
//! ```text
//! REPLY:  "IMPA" | version u16 LE | status u8 | reserved u8 | resume_offset u64 LE | tenant u64 LE
//! ```
//!
//! `tenant` in the HELLO is 0 for a fresh producer ("assign me a token") or a
//! previously assigned token to rejoin the same tenant pipeline after a
//! reconnect. The reply's `tenant` is the server-assigned token and is
//! authoritative, as is `resume_offset`: the client seeks its input there and
//! resumes, regardless of what it announced. A non-OK `status` is a typed
//! reject: `BUSY` (2) means admission control refused the session (retry
//! later), `QUARANTINED` (3) means this tenant token is banned for the rest
//! of the daemon's life (do not retry). After the handshake, tagged frames
//! flow client → server:
//!
//! ```text
//! DATA(1):      tag u8 | offset u64 LE | len u32 LE | payload[len]
//! HEARTBEAT(2): tag u8
//! FIN(3):       tag u8 | total u64 LE
//! ```
//!
//! and server → client on the same connection:
//!
//! ```text
//! ACK(5):     tag u8 | committed u64 LE     (every `ack_every` bytes + on FIN)
//! GOODBYE(4): tag u8 | committed u64 LE     (graceful drain; not a crash)
//! ```
//!
//! The server commits bytes strictly in offset order and drops (or trims)
//! any DATA frame that overlaps what it already committed, so client
//! retransmission after a lost ack is harmless. A DATA offset *beyond* the
//! committed offset is a protocol violation: the server drops the connection
//! and the client reconnects and reseeks, which heals the gap.

use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::source::{DisconnectReason, FollowPolicy, TraceSource, TransportEvent};

/// Magic leading a client HELLO.
pub const HELLO_MAGIC: [u8; 4] = *b"IMPS";
/// Magic leading a server handshake reply.
pub const REPLY_MAGIC: [u8; 4] = *b"IMPA";
/// Wire protocol version spoken by this build.
pub const TRANSPORT_VERSION: u16 = 2;
/// Handshake message size (both directions).
pub const HANDSHAKE_BYTES: usize = 24;
/// Protocol cap on a single DATA frame payload; also bounds server staging.
pub const MAX_DATA_BYTES: usize = 256 * 1024;
/// Default client DATA payload size.
pub const DEFAULT_DATA_BYTES: usize = 32 * 1024;
/// Default server ack cadence in committed bytes.
pub const DEFAULT_ACK_EVERY: u64 = 128 * 1024;
/// Default client flow-control window (unacked bytes before blocking).
pub const DEFAULT_ACK_WINDOW: u64 = 1 << 20;
/// Default cap on sessions one `send_stream` call may open.
pub const DEFAULT_MAX_SESSIONS: u64 = 64;

const TAG_DATA: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_FIN: u8 = 3;
const TAG_GOODBYE: u8 = 4;
const TAG_ACK: u8 = 5;
pub(crate) const DATA_HEADER: usize = 13;

const STATUS_OK: u8 = 0;
const STATUS_BAD_VERSION: u8 = 1;
/// Admission control refused the session; the producer may retry later.
const STATUS_BUSY: u8 = 2;
/// The presented tenant token is banned; the producer must not retry.
const STATUS_QUARANTINED: u8 = 3;

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn transport_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, msg.into())
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn conn_closed() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        "daemon closed the connection",
    )
}

/// A parsed transport address: `tcp://host:port` or `unix://path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP endpoint (`tcp://127.0.0.1:7700`).
    Tcp(String),
    /// Unix-domain stream endpoint (`unix:///run/impress.sock`).
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp://addr` / `unix://path`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for unknown schemes or empty addresses.
    pub fn parse(s: &str) -> io::Result<Self> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty tcp endpoint address",
                ));
            }
            Ok(Endpoint::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty unix endpoint path",
                ));
            }
            Ok(Endpoint::Unix(PathBuf::from(rest)))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("endpoint must start with tcp:// or unix://, got {s:?}"),
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// One stream connection, TCP or Unix — the byte pipe both endpoints share.
#[derive(Debug)]
pub enum Wire {
    /// A connected TCP stream.
    Tcp(TcpStream),
    /// A connected Unix-domain stream.
    Unix(UnixStream),
}

impl Wire {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates connect errors (refused, absent socket path, ...).
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Wire::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Unix(path) => Ok(Wire::Unix(UnixStream::connect(path)?)),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Wire::Tcp(s) => s.read(buf),
            Wire::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.write_all(buf),
            Wire::Unix(s) => s.write_all(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Wire::Tcp(s) => s.write(buf),
            Wire::Unix(s) => s.write(buf),
        }
    }

    fn write_prefix(&mut self, buf: &[u8], keep: usize) -> io::Result<()> {
        self.write_all(&buf[..keep.min(buf.len())])
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        let t = t.map(|d| d.max(Duration::from_millis(1)));
        match self {
            Wire::Tcp(s) => s.set_read_timeout(t),
            Wire::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.set_nonblocking(on),
            Wire::Unix(s) => s.set_nonblocking(on),
        }
    }

    fn shutdown(&self) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Wire::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Wire::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Wire::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

/// A bound, non-blocking accept socket for [`SocketSource`].
#[derive(Debug)]
pub enum Listener {
    /// Bound TCP listener.
    Tcp(TcpListener),
    /// Bound Unix-domain listener plus its path (unlinked on drop).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `endpoint` and switches the listener to non-blocking accepts.
    ///
    /// A stale Unix socket file at the path is unlinked first so daemon
    /// restarts can rebind.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            Endpoint::Unix(path) => {
                let _ = fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// The endpoint actually bound (resolves `tcp://…:0` to the real port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` errors.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, p) => Ok(Endpoint::Unix(p.clone())),
        }
    }

    fn accept(&self) -> io::Result<Option<Wire>> {
        let wire = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Wire::Tcp(s),
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Wire::Unix(s),
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        wire.set_nonblocking(false)?;
        Ok(Some(wire))
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = fs::remove_file(path);
        }
    }
}

fn hello_bytes(start_offset: u64, tenant: u64) -> [u8; HANDSHAKE_BYTES] {
    let mut b = [0u8; HANDSHAKE_BYTES];
    b[..4].copy_from_slice(&HELLO_MAGIC);
    b[4..6].copy_from_slice(&TRANSPORT_VERSION.to_le_bytes());
    // b[6..8]: flags, reserved (zero).
    b[8..16].copy_from_slice(&start_offset.to_le_bytes());
    b[16..24].copy_from_slice(&tenant.to_le_bytes());
    b
}

fn reply_bytes(status: u8, committed: u64, tenant: u64) -> [u8; HANDSHAKE_BYTES] {
    let mut b = [0u8; HANDSHAKE_BYTES];
    b[..4].copy_from_slice(&REPLY_MAGIC);
    b[4..6].copy_from_slice(&TRANSPORT_VERSION.to_le_bytes());
    b[6] = status;
    b[8..16].copy_from_slice(&committed.to_le_bytes());
    b[16..24].copy_from_slice(&tenant.to_le_bytes());
    b
}

fn tagged_u64(tag: u8, value: u64) -> [u8; 9] {
    let mut b = [0u8; 9];
    b[0] = tag;
    b[1..9].copy_from_slice(&value.to_le_bytes());
    b
}

/// Builds the wire bytes of one DATA frame.
fn data_frame(offset: u64, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(DATA_HEADER + payload.len());
    b.push(TAG_DATA);
    b.extend_from_slice(&offset.to_le_bytes());
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    b.extend_from_slice(payload);
    b
}

/// Tuning knobs for [`SocketSource`] beyond the reconnect policy.
#[derive(Debug, Clone, Copy)]
pub struct SocketTuning {
    /// Send an ACK each time this many new canonical bytes commit.
    pub ack_every: u64,
    /// How long a freshly accepted connection may take to complete the
    /// handshake before it is dropped as a protocol violation.
    pub handshake_timeout: Duration,
}

impl Default for SocketTuning {
    fn default() -> Self {
        Self {
            ack_every: DEFAULT_ACK_EVERY,
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

enum Frame {
    Data {
        offset: u64,
        start: usize,
        len: usize,
    },
    Heartbeat,
    Fin {
        total: u64,
    },
}

/// Parses one complete frame at the start of `b`, returning it plus the
/// bytes consumed. For DATA, `start` is the payload offset *relative to
/// `b`*. `Ok(None)` means the frame is still incomplete; `Err(())` is a
/// protocol violation (unknown tag or oversized DATA).
fn parse_frame(b: &[u8]) -> Result<Option<(Frame, usize)>, ()> {
    if b.is_empty() {
        return Ok(None);
    }
    match b[0] {
        TAG_DATA => {
            if b.len() < DATA_HEADER {
                return Ok(None);
            }
            let offset = u64::from_le_bytes(b[1..9].try_into().unwrap());
            let len = u32::from_le_bytes(b[9..13].try_into().unwrap()) as usize;
            if len > MAX_DATA_BYTES {
                return Err(());
            }
            if b.len() < DATA_HEADER + len {
                return Ok(None);
            }
            Ok(Some((
                Frame::Data {
                    offset,
                    start: DATA_HEADER,
                    len,
                },
                DATA_HEADER + len,
            )))
        }
        TAG_HEARTBEAT => Ok(Some((Frame::Heartbeat, 1))),
        TAG_FIN => {
            if b.len() < 9 {
                return Ok(None);
            }
            let total = u64::from_le_bytes(b[1..9].try_into().unwrap());
            Ok(Some((Frame::Fin { total }, 9)))
        }
        _ => Err(()),
    }
}

struct ServerConn {
    wire: Wire,
    session: u64,
    rbuf: Vec<u8>,
    rat: usize,
    idle: Duration,
    last_ack: u64,
}

impl ServerConn {
    fn new(wire: Wire, session: u64, committed: u64) -> Self {
        Self {
            wire,
            session,
            rbuf: Vec::with_capacity(64 * 1024),
            rat: 0,
            idle: Duration::ZERO,
            last_ack: committed,
        }
    }

    fn avail(&self) -> usize {
        self.rbuf.len() - self.rat
    }

    /// Parses one complete frame at the cursor, if buffered. For DATA the
    /// returned range indexes `rbuf` and stays valid until the next
    /// `read_more` (which compacts). `Err(())` is a protocol violation.
    fn try_frame(&mut self) -> Result<Option<Frame>, ()> {
        match parse_frame(&self.rbuf[self.rat..])? {
            None => Ok(None),
            Some((mut frame, consumed)) => {
                if let Frame::Data { start, .. } = &mut frame {
                    *start += self.rat;
                }
                self.rat += consumed;
                Ok(Some(frame))
            }
        }
    }

    /// Compacts consumed bytes, then appends whatever arrives within
    /// `timeout`. `Ok(0)` is EOF; timeouts surface as `WouldBlock`/`TimedOut`.
    fn read_more(&mut self, timeout: Duration) -> io::Result<usize> {
        if self.rat > 0 {
            self.rbuf.drain(..self.rat);
            self.rat = 0;
        }
        self.wire.set_read_timeout(Some(timeout))?;
        let mut scratch = [0u8; 16 * 1024];
        let n = self.wire.read(&mut scratch)?;
        self.rbuf.extend_from_slice(&scratch[..n]);
        Ok(n)
    }

    fn send_ack(&mut self, committed: u64) -> io::Result<()> {
        self.last_ack = committed;
        self.wire.write_all(&tagged_u64(TAG_ACK, committed))
    }
}

/// A [`TraceSource`] fed by a socket accept loop with session resume.
///
/// The source owns a bound [`Listener`] and supervises one producer
/// connection at a time: handshake (offset negotiation), per-read timeouts
/// with heartbeat/idle detection, dedup-by-offset so retransmitted bytes
/// never reach the codec twice, acks every [`SocketTuning::ack_every`]
/// committed bytes, and accept-loop reconnect supervision driven by
/// [`FollowPolicy`]'s capped exponential backoff. Staging is bounded by one
/// DATA frame ([`MAX_DATA_BYTES`]).
///
/// Every disconnect, stall, resumed session, duplicate drop, and graceful
/// drain is recorded as a [`TransportEvent`] and drained via
/// [`TraceSource::take_transport_events`].
#[derive(Debug)]
pub struct SocketSource {
    listener: Listener,
    policy: FollowPolicy,
    tuning: SocketTuning,
    #[allow(clippy::struct_field_names)]
    conn: Option<ServerConnBox>,
    stage: Vec<u8>,
    events: Vec<TransportEvent>,
    committed: u64,
    sessions: u64,
    finished: bool,
    drained: bool,
    drain: Option<&'static AtomicBool>,
}

// Keeps SocketSource's Debug derive happy without exposing conn internals.
struct ServerConnBox(ServerConn);

impl fmt::Debug for ServerConnBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerConn")
            .field("session", &self.0.session)
            .field("buffered", &self.0.avail())
            .finish()
    }
}

impl SocketSource {
    /// Wraps a bound listener with reconnect policy `policy`.
    pub fn new(listener: Listener, policy: FollowPolicy) -> Self {
        Self {
            listener,
            policy,
            tuning: SocketTuning::default(),
            conn: None,
            stage: Vec::new(),
            events: Vec::new(),
            committed: 0,
            sessions: 0,
            finished: false,
            drained: false,
            drain: None,
        }
    }

    /// Overrides ack cadence / handshake deadline.
    #[must_use]
    pub fn with_tuning(mut self, tuning: SocketTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a drain flag: once it reads `true`, the source sends a
    /// protocol GOODBYE to any connected client and reports end-of-stream,
    /// letting the daemon finish the in-flight batch and emit its verdict.
    /// (`&'static` so a signal handler can own the flag; leak one with
    /// `Box::leak` in tests.)
    #[must_use]
    pub fn with_drain_flag(mut self, flag: &'static AtomicBool) -> Self {
        self.drain = Some(flag);
        self
    }

    /// The endpoint actually bound (resolves TCP port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` errors.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        self.listener.local_endpoint()
    }

    /// Canonical bytes committed (delivered to the codec) so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of producer sessions accepted so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    fn drain_requested(&self) -> bool {
        self.drain.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    fn poll_interval(&self) -> Duration {
        (self.policy.idle_limit / 50).clamp(Duration::from_millis(1), Duration::from_millis(25))
    }

    fn drop_conn(&mut self, reason: DisconnectReason) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.0.wire.shutdown();
            self.events.push(TransportEvent::Disconnected {
                session: conn.0.session,
                offset: self.committed,
                reason,
            });
        }
    }

    fn goodbye(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = conn
                .0
                .wire
                .write_all(&tagged_u64(TAG_GOODBYE, self.committed));
            let _ = conn.0.wire.shutdown();
        }
        if !self.drained {
            self.drained = true;
            self.events.push(TransportEvent::Drained {
                offset: self.committed,
            });
        }
        self.finished = true;
    }

    /// Waits for a producer to connect and complete the handshake. Returns
    /// `false` on idle-out (no producer within `idle_limit`) or when a drain
    /// was requested mid-wait.
    fn accept_session(&mut self) -> io::Result<bool> {
        let mut idle = Duration::ZERO;
        let mut backoff = self.policy.initial_backoff;
        loop {
            if self.drain_requested() {
                return Ok(false);
            }
            match self.listener.accept()? {
                Some(wire) => {
                    self.sessions += 1;
                    let session = self.sessions;
                    match self.handshake_server(wire, session) {
                        Ok(conn) => {
                            if session > 1 || self.committed > 0 {
                                self.events.push(TransportEvent::SessionResumed {
                                    session,
                                    offset: self.committed,
                                });
                            }
                            self.conn = Some(ServerConnBox(conn));
                            return Ok(true);
                        }
                        Err(reason) => {
                            self.events.push(TransportEvent::Disconnected {
                                session,
                                offset: self.committed,
                                reason,
                            });
                            // Keep waiting for a well-behaved producer.
                        }
                    }
                }
                None => {
                    if idle >= self.policy.idle_limit {
                        return Ok(false);
                    }
                    std::thread::sleep(backoff);
                    idle += backoff;
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
    }

    /// Reads and validates the 16-byte HELLO, replies with the committed
    /// offset. On failure returns the disconnect reason for the ledger.
    fn handshake_server(
        &self,
        mut wire: Wire,
        session: u64,
    ) -> Result<ServerConn, DisconnectReason> {
        let mut hello = [0u8; HANDSHAKE_BYTES];
        let mut got = 0;
        let deadline = Instant::now() + self.tuning.handshake_timeout;
        let poll = self.poll_interval();
        while got < HANDSHAKE_BYTES {
            if wire.set_read_timeout(Some(poll)).is_err() {
                return Err(DisconnectReason::Io);
            }
            match wire.read(&mut hello[got..]) {
                Ok(0) => return Err(DisconnectReason::Eof),
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(DisconnectReason::Stall);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(DisconnectReason::Io),
            }
        }
        if hello[..4] != HELLO_MAGIC {
            return Err(DisconnectReason::Protocol);
        }
        let version = u16::from_le_bytes(hello[4..6].try_into().unwrap());
        if version != TRANSPORT_VERSION {
            let _ = wire.write_all(&reply_bytes(STATUS_BAD_VERSION, self.committed, 0));
            return Err(DisconnectReason::Protocol);
        }
        // A single-pipeline source serves exactly one tenant: echo a
        // presented token, or assign 1 to a fresh producer.
        let tenant = u64::from_le_bytes(hello[16..24].try_into().unwrap()).max(1);
        if wire
            .write_all(&reply_bytes(STATUS_OK, self.committed, tenant))
            .is_err()
        {
            return Err(DisconnectReason::Io);
        }
        Ok(ServerConn::new(wire, session, self.committed))
    }

    /// Commits one DATA frame: trims or drops bytes the server already
    /// committed, stages the new suffix. Returns `true` if bytes were staged.
    fn stage_data(&mut self, offset: u64, start: usize, len: usize) -> bool {
        let Self {
            conn,
            stage,
            events,
            committed,
            tuning,
            ..
        } = self;
        let conn = &mut conn.as_mut().expect("connection present").0;
        let Some(end) = offset.checked_add(len as u64) else {
            // Offset arithmetic overflow is a protocol violation.
            drop_conn_inline(conn, events, *committed, DisconnectReason::Protocol);
            self.conn = None;
            return false;
        };
        if offset > *committed {
            // A gap means lost bytes we never acked: force a reconnect so the
            // client reseeks to the committed offset.
            drop_conn_inline(conn, events, *committed, DisconnectReason::Protocol);
            self.conn = None;
            return false;
        }
        let skip = (*committed - offset) as usize;
        if skip >= len {
            events.push(TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: *committed,
                bytes: len as u64,
            });
            // Re-ack so a client that missed the original ack advances.
            if conn.send_ack(*committed).is_err() {
                drop_conn_inline(conn, events, *committed, DisconnectReason::Io);
                self.conn = None;
            }
            return false;
        }
        if skip > 0 {
            events.push(TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: *committed,
                bytes: skip as u64,
            });
        }
        stage.clear();
        stage.extend_from_slice(&conn.rbuf[start + skip..start + len]);
        *committed = end;
        let ack_due = *committed - conn.last_ack >= tuning.ack_every;
        if ack_due && conn.send_ack(*committed).is_err() {
            drop_conn_inline(conn, events, *committed, DisconnectReason::Io);
            self.conn = None;
        }
        true
    }

    fn handle_fin(&mut self, total: u64) {
        if total == self.committed {
            if let Some(conn) = self.conn.as_mut() {
                let _ = conn.0.send_ack(total);
            }
            self.conn = None;
            self.finished = true;
        } else {
            // The client believes a different amount was delivered; force a
            // resync through reconnect.
            self.drop_conn(DisconnectReason::Protocol);
        }
    }

    fn pump(&mut self) -> io::Result<()> {
        let poll = self.poll_interval();
        let idle_limit = self.policy.idle_limit;
        let committed = self.committed;
        let reason = {
            let conn = &mut self.conn.as_mut().expect("connection present").0;
            match conn.read_more(poll) {
                Ok(0) => Some(DisconnectReason::Eof),
                Ok(_) => {
                    conn.idle = Duration::ZERO;
                    None
                }
                Err(e) if is_timeout(&e) => {
                    conn.idle += poll;
                    // A quiet producer may be blocked on flow control with a
                    // send window smaller than our ack cadence; flush the ack
                    // for whatever is committed so it can make progress.
                    if committed > conn.last_ack {
                        let _ = conn.send_ack(committed);
                    }
                    if conn.idle >= idle_limit {
                        Some(DisconnectReason::Stall)
                    } else {
                        None
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => None,
                Err(_) => Some(DisconnectReason::Io),
            }
        };
        if let Some(reason) = reason {
            self.drop_conn(reason);
        }
        Ok(())
    }
}

fn drop_conn_inline(
    conn: &mut ServerConn,
    events: &mut Vec<TransportEvent>,
    committed: u64,
    reason: DisconnectReason,
) {
    let _ = conn.wire.shutdown();
    events.push(TransportEvent::Disconnected {
        session: conn.session,
        offset: committed,
        reason,
    });
}

impl TraceSource for SocketSource {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        loop {
            if self.drain_requested() && !self.finished {
                self.goodbye();
                return Ok(None);
            }
            if self.finished {
                return Ok(None);
            }
            if self.conn.is_none() {
                if self.accept_session()? {
                    continue;
                }
                if self.drain_requested() {
                    continue; // goodbye at loop top
                }
                return Ok(None); // idled out with no producer
            }
            let parsed = self
                .conn
                .as_mut()
                .expect("connection present")
                .0
                .try_frame();
            match parsed {
                Ok(Some(Frame::Data { offset, start, len })) => {
                    if self.stage_data(offset, start, len) {
                        return Ok(Some(&self.stage));
                    }
                }
                Ok(Some(Frame::Heartbeat)) => {}
                Ok(Some(Frame::Fin { total })) => self.handle_fin(total),
                Ok(None) => self.pump()?,
                Err(()) => self.drop_conn(DisconnectReason::Protocol),
            }
        }
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }
}

/// A server → client control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReply {
    /// The server committed bytes up to this offset.
    Ack(u64),
    /// Graceful shutdown at this committed offset — stop retrying.
    Goodbye(u64),
}

/// Result of a successful client handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// The server's authoritative committed offset to resume sending from.
    pub resume_offset: u64,
    /// The tenant token the server bound this session to. Presented on
    /// reconnect so the session rejoins the same tenant pipeline.
    pub tenant: u64,
}

/// Client half of one transport session: framed sends plus reply reads.
///
/// [`WireLink`] is the real implementation;
/// [`FaultTransport`](crate::faults::FaultTransport) wraps it to inject
/// connection-level faults in tests.
pub trait ClientLink {
    /// Sends HELLO announcing `start_offset` and `tenant` (0 = "assign me a
    /// token") and returns the server's authoritative resume offset and
    /// tenant token.
    ///
    /// # Errors
    ///
    /// I/O errors, handshake timeout, a version rejection, an admission
    /// reject (`ConnectionRefused` — the daemon is at capacity, retry
    /// later), or a quarantine reject (`PermissionDenied` — this tenant is
    /// banned, do not retry).
    fn handshake(
        &mut self,
        start_offset: u64,
        tenant: u64,
        timeout: Duration,
    ) -> io::Result<Handshake>;

    /// Sends one DATA frame carrying `payload` at stream `offset`.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_data(&mut self, offset: u64, payload: &[u8]) -> io::Result<()>;

    /// Sends a HEARTBEAT keep-alive.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_heartbeat(&mut self) -> io::Result<()>;

    /// Sends FIN declaring the total stream length.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    fn send_fin(&mut self, total: u64) -> io::Result<()>;

    /// Reads one server reply. `wait: None` polls without blocking; with a
    /// timeout, returns `Ok(None)` if nothing arrived in time.
    ///
    /// # Errors
    ///
    /// Socket read errors or malformed replies.
    fn recv_reply(&mut self, wait: Option<Duration>) -> io::Result<Option<ServerReply>>;
}

/// The concrete [`ClientLink`] over a [`Wire`].
#[derive(Debug)]
pub struct WireLink {
    wire: Wire,
    rbuf: Vec<u8>,
    rat: usize,
}

impl WireLink {
    /// Connects a fresh link to `endpoint` (handshake not yet performed).
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        Ok(Self {
            wire: Wire::connect(endpoint)?,
            rbuf: Vec::new(),
            rat: 0,
        })
    }

    /// Sends only the first `keep` wire bytes of a DATA frame, then reports
    /// the connection dead. Fault-injection hook for `ShortWrite`.
    pub(crate) fn send_data_prefix(
        &mut self,
        offset: u64,
        payload: &[u8],
        keep: usize,
    ) -> io::Result<()> {
        let frame = data_frame(offset, payload);
        self.wire.write_prefix(&frame, keep)?;
        self.sever();
        Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected short write",
        ))
    }

    /// Sends only the first `keep` wire bytes of a DATA frame and keeps the
    /// connection open: the slow-loris hook. The server sits on an
    /// incomplete frame — the session looks alive but never commits — until
    /// its stall eviction fires.
    pub(crate) fn send_data_stall(
        &mut self,
        offset: u64,
        payload: &[u8],
        keep: usize,
    ) -> io::Result<()> {
        let frame = data_frame(offset, payload);
        self.wire.write_prefix(&frame, keep)
    }

    /// Severs the link for fault injection without destroying in-flight
    /// data: shuts down only the write side, so everything already written
    /// still reaches the server, then drains incoming replies until the
    /// server closes. Closing a socket with unread bytes in its receive
    /// queue resets the connection and can tear down data the peer has not
    /// read yet — which would make the delivered prefix racy instead of
    /// exact.
    pub(crate) fn sever(&mut self) {
        let _ = self.wire.shutdown_write();
        let _ = self.wire.set_read_timeout(Some(Duration::from_secs(2)));
        let mut scratch = [0u8; 1024];
        loop {
            match self.wire.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    fn parse_reply(&mut self) -> io::Result<Option<ServerReply>> {
        let avail = self.rbuf.len() - self.rat;
        if avail == 0 {
            return Ok(None);
        }
        let b = &self.rbuf[self.rat..];
        match b[0] {
            TAG_ACK | TAG_GOODBYE if b.len() >= 9 => {
                let v = u64::from_le_bytes(b[1..9].try_into().unwrap());
                let tag = b[0];
                self.rat += 9;
                Ok(Some(if tag == TAG_ACK {
                    ServerReply::Ack(v)
                } else {
                    ServerReply::Goodbye(v)
                }))
            }
            TAG_ACK | TAG_GOODBYE => Ok(None),
            t => Err(protocol_err(format!("unexpected reply tag {t}"))),
        }
    }

    fn read_replies(&mut self, wait: Option<Duration>) -> io::Result<usize> {
        if self.rat > 0 {
            self.rbuf.drain(..self.rat);
            self.rat = 0;
        }
        let mut scratch = [0u8; 1024];
        let n = match wait {
            None => {
                self.wire.set_nonblocking(true)?;
                let r = self.wire.read(&mut scratch);
                self.wire.set_nonblocking(false)?;
                match r {
                    // A zero-byte read is peer EOF, not "nothing available":
                    // surface it so callers reconnect instead of spinning.
                    Ok(0) => return Err(conn_closed()),
                    Ok(n) => n,
                    Err(e) if is_timeout(&e) => 0,
                    Err(e) => return Err(e),
                }
            }
            Some(t) => {
                self.wire.set_read_timeout(Some(t))?;
                match self.wire.read(&mut scratch) {
                    Ok(0) => return Err(conn_closed()),
                    Ok(n) => n,
                    Err(e) if is_timeout(&e) => 0,
                    Err(e) => return Err(e),
                }
            }
        };
        if n > 0 {
            self.rbuf.extend_from_slice(&scratch[..n]);
        }
        Ok(n)
    }
}

impl ClientLink for WireLink {
    fn handshake(
        &mut self,
        start_offset: u64,
        tenant: u64,
        timeout: Duration,
    ) -> io::Result<Handshake> {
        self.wire.write_all(&hello_bytes(start_offset, tenant))?;
        let mut reply = [0u8; HANDSHAKE_BYTES];
        let mut got = 0;
        let deadline = Instant::now() + timeout;
        let poll = Duration::from_millis(10);
        while got < HANDSHAKE_BYTES {
            self.wire.set_read_timeout(Some(poll))?;
            match self.wire.read(&mut reply[got..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "daemon closed the connection during handshake",
                    ))
                }
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(transport_err("handshake timed out"));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if reply[..4] != REPLY_MAGIC {
            return Err(protocol_err("bad handshake reply magic"));
        }
        let version = u16::from_le_bytes(reply[4..6].try_into().unwrap());
        if version != TRANSPORT_VERSION {
            return Err(protocol_err(format!(
                "daemon speaks transport version {version}, client speaks {TRANSPORT_VERSION}"
            )));
        }
        match reply[6] {
            STATUS_OK => {}
            STATUS_BUSY => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "daemon is at capacity: session rejected (busy)",
                ))
            }
            STATUS_QUARANTINED => {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "daemon quarantined this tenant: session rejected permanently",
                ))
            }
            status => {
                return Err(protocol_err(format!(
                    "daemon rejected the session (status {status})"
                )))
            }
        }
        Ok(Handshake {
            resume_offset: u64::from_le_bytes(reply[8..16].try_into().unwrap()),
            tenant: u64::from_le_bytes(reply[16..24].try_into().unwrap()),
        })
    }

    fn send_data(&mut self, offset: u64, payload: &[u8]) -> io::Result<()> {
        self.wire.write_all(&data_frame(offset, payload))
    }

    fn send_heartbeat(&mut self) -> io::Result<()> {
        self.wire.write_all(&[TAG_HEARTBEAT])
    }

    fn send_fin(&mut self, total: u64) -> io::Result<()> {
        self.wire.write_all(&tagged_u64(TAG_FIN, total))
    }

    fn recv_reply(&mut self, wait: Option<Duration>) -> io::Result<Option<ServerReply>> {
        if let Some(r) = self.parse_reply()? {
            return Ok(Some(r));
        }
        if self.read_replies(wait)? == 0 {
            return Ok(None);
        }
        self.parse_reply()
    }
}

/// Client-side input stream for [`send_stream`].
///
/// Offset resume across daemon restarts needs a seekable input; FIFOs and
/// stdin can only skip forward.
pub trait SendInput {
    /// Positions the cursor at absolute `offset`.
    ///
    /// # Errors
    ///
    /// `Unsupported` when a non-seekable input would have to rewind.
    fn seek_to(&mut self, offset: u64) -> io::Result<()>;

    /// Reads the next bytes at the cursor; `Ok(0)` means end-of-input (for
    /// now — a growing file may return more later).
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// Seekable [`SendInput`] over a [`fs::File`].
#[derive(Debug)]
pub struct FileInput {
    file: fs::File,
    at: u64,
}

impl FileInput {
    /// Opens `path` for sending.
    ///
    /// # Errors
    ///
    /// Propagates open errors.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self {
            file: fs::File::open(path)?,
            at: 0,
        })
    }
}

impl SendInput for FileInput {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.at = offset;
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.file.read(buf)?;
        self.at += n as u64;
        Ok(n)
    }
}

/// Forward-only [`SendInput`] over any reader (FIFOs, stdin).
#[derive(Debug)]
pub struct ReaderInput<R: Read> {
    inner: R,
    at: u64,
}

impl<R: Read> ReaderInput<R> {
    /// Wraps `inner` with the cursor at 0.
    pub fn new(inner: R) -> Self {
        Self { inner, at: 0 }
    }
}

impl<R: Read> SendInput for ReaderInput<R> {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        if offset < self.at {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "daemon requested resume from byte {offset} but this input \
                     is not seekable (cursor already at {})",
                    self.at
                ),
            ));
        }
        let mut remaining = offset - self.at;
        let mut scratch = [0u8; 16 * 1024];
        while remaining > 0 {
            let want = scratch.len().min(remaining as usize);
            let n = self.inner.read(&mut scratch[..want])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "input ended while skipping to the daemon's resume offset",
                ));
            }
            remaining -= n as u64;
            self.at += n as u64;
        }
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.at += n as u64;
        Ok(n)
    }
}

/// Fully seekable in-memory [`SendInput`] (tests, small traces).
#[derive(Debug)]
pub struct MemInput {
    data: Vec<u8>,
    at: u64,
}

impl MemInput {
    /// Serves `data` from offset 0.
    pub fn new(data: Vec<u8>) -> Self {
        Self { data, at: 0 }
    }
}

impl SendInput for MemInput {
    fn seek_to(&mut self, offset: u64) -> io::Result<()> {
        if offset > self.data.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "resume offset beyond input length",
            ));
        }
        self.at = offset;
        Ok(())
    }

    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = &self.data[self.at as usize..];
        let n = buf.len().min(rest.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.at += n as u64;
        Ok(n)
    }
}

/// Behavior knobs for [`send_stream`].
#[derive(Debug, Clone, Copy)]
pub struct SendOptions {
    /// Reconnect backoff and idle/ack-wait limits (reuses the daemon's
    /// follow policy shape).
    pub policy: FollowPolicy,
    /// Reconnect and resend after transport errors instead of giving up.
    pub retry: bool,
    /// Payload bytes per DATA frame.
    pub data_bytes: usize,
    /// Unacked-byte window before the sender blocks waiting for an ack
    /// (client-side flow control; bounds the daemon's staging backlog).
    pub ack_window: u64,
    /// Keep polling the input for growth at EOF (FIFO/tailed-file mode)
    /// until it stays idle for `policy.idle_limit`, then FIN.
    pub follow: bool,
    /// Hard cap on sessions opened before giving up (termination backstop).
    pub max_sessions: u64,
    /// Heartbeat cadence while idling in follow mode. `None` falls back to
    /// `policy.max_backoff` (the pre-configurable behavior).
    pub heartbeat: Option<Duration>,
    /// Tenant token to present in the HELLO. 0 asks the daemon to assign
    /// one; reconnects within the same call always reuse the assigned token.
    pub tenant: u64,
}

impl Default for SendOptions {
    fn default() -> Self {
        Self {
            policy: FollowPolicy::default(),
            retry: true,
            data_bytes: DEFAULT_DATA_BYTES,
            ack_window: DEFAULT_ACK_WINDOW,
            follow: false,
            max_sessions: DEFAULT_MAX_SESSIONS,
            heartbeat: None,
            tenant: 0,
        }
    }
}

/// What a [`send_stream`] call accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendOutcome {
    /// Bytes the daemon acknowledged as committed.
    pub acked: u64,
    /// Sessions opened (1 = no reconnects).
    pub sessions: u64,
    /// Bytes re-sent below the high-water mark after reconnects.
    pub retransmitted: u64,
    /// The daemon sent a protocol GOODBYE (graceful shutdown, not a crash).
    pub goodbye: bool,
    /// FIN was acknowledged: the daemon committed the entire input.
    pub complete: bool,
    /// Tenant token the daemon bound this stream to (0 if no session ever
    /// completed a handshake).
    pub tenant: u64,
}

enum SessionEnd {
    /// The stream finished (FIN acked) or the daemon said goodbye.
    Done,
    /// Transport failure; reconnect if retrying.
    Lost(io::Error),
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_session<I: SendInput, L: ClientLink>(
    link: &mut L,
    input: &mut I,
    options: &SendOptions,
    offset: &mut u64,
    last_ack: &mut u64,
    high_water: &mut u64,
    outcome: &mut SendOutcome,
    chunk: &mut [u8],
) -> io::Result<SessionEnd> {
    macro_rules! lnk {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(e) => return Ok(SessionEnd::Lost(e)),
            }
        };
    }
    let poll = Duration::from_millis(20).min(options.policy.idle_limit);
    let heartbeat_every = options
        .heartbeat
        .unwrap_or(options.policy.max_backoff)
        .max(Duration::from_millis(1));
    let mut fin_at: Option<u64> = None;
    let mut input_idle = Duration::ZERO;
    let mut ack_wait = Duration::ZERO;
    // Folds one reply into the session state; `true` means the daemon said
    // goodbye and the session (and the whole send) is over.
    let mut saw_goodbye = false;
    macro_rules! apply {
        ($reply:expr) => {
            match $reply {
                ServerReply::Ack(a) => {
                    if a > *last_ack {
                        *last_ack = a;
                        ack_wait = Duration::ZERO;
                    }
                }
                ServerReply::Goodbye(a) => {
                    if a > *last_ack {
                        *last_ack = a;
                    }
                    outcome.goodbye = true;
                    saw_goodbye = true;
                }
            }
        };
    }
    loop {
        // Completion first: a FIN ack already applied must win over any
        // subsequent EOF the daemon sends when it closes the connection.
        if let Some(total) = fin_at {
            if *last_ack >= total {
                outcome.complete = true;
                return Ok(SessionEnd::Done);
            }
        }
        if saw_goodbye {
            return Ok(SessionEnd::Done);
        }
        // Drain whatever replies already arrived. Stop as soon as the stream
        // is complete: the daemon closes right after the final ack, and one
        // more read would turn that EOF into a spurious session loss.
        while let Some(reply) = lnk!(link.recv_reply(None)) {
            apply!(reply);
            if saw_goodbye || fin_at.is_some_and(|total| *last_ack >= total) {
                break;
            }
        }
        if saw_goodbye {
            continue; // completion check at loop top
        }
        if fin_at.is_some() || *offset - *last_ack >= options.ack_window {
            // FIN pending or flow-control window full: block for an ack.
            if fin_at.is_some() && *last_ack >= fin_at.unwrap_or(0) {
                continue; // the drain above just completed the stream
            }
            match lnk!(link.recv_reply(Some(poll))) {
                Some(reply) => apply!(reply),
                None => {
                    ack_wait += poll;
                    if ack_wait >= options.policy.idle_limit {
                        return Ok(SessionEnd::Lost(transport_err(
                            "daemon stopped acking before the stream completed",
                        )));
                    }
                }
            }
            continue;
        }
        // Pump input.
        let n = input.read_more(chunk)?;
        if n > 0 {
            if *offset < *high_water {
                outcome.retransmitted += (n as u64).min(*high_water - *offset);
            }
            lnk!(link.send_data(*offset, &chunk[..n]));
            *offset += n as u64;
            *high_water = (*high_water).max(*offset);
            input_idle = Duration::ZERO;
            continue;
        }
        // EOF: in follow mode, heartbeat and poll for growth first.
        if options.follow && input_idle < options.policy.idle_limit {
            lnk!(link.send_heartbeat());
            std::thread::sleep(heartbeat_every);
            input_idle += heartbeat_every;
            continue;
        }
        lnk!(link.send_fin(*offset));
        fin_at = Some(*offset);
        ack_wait = Duration::ZERO;
    }
}

/// Streams `input` to a daemon with retry/backoff and offset resume.
///
/// `dial` opens a fresh (unhandshaken) [`ClientLink`] per session; the
/// handshake's resume offset repositions the input, so reconnects — including
/// across a daemon restart with `--resume` — deliver exactly the canonical
/// byte stream. Returns once FIN is acked, the daemon says GOODBYE, or
/// retries are exhausted.
///
/// # Errors
///
/// Input read/seek errors are returned as-is; transport failures surface as
/// `TimedOut`-class errors once the retry budget (consecutive downtime
/// exceeding `policy.idle_limit`, or `max_sessions`) is spent. With
/// `retry: false` the first transport failure is returned directly.
pub fn send_stream<I, L, D>(
    input: &mut I,
    mut dial: D,
    options: &SendOptions,
) -> io::Result<SendOutcome>
where
    I: SendInput,
    L: ClientLink,
    D: FnMut() -> io::Result<L>,
{
    let mut outcome = SendOutcome::default();
    let mut chunk = vec![0u8; options.data_bytes.clamp(1, MAX_DATA_BYTES)];
    let mut believed = 0u64;
    let mut high_water = 0u64;
    let mut tenant = options.tenant;
    let mut downtime = Duration::ZERO;
    let mut backoff = options.policy.initial_backoff.max(Duration::from_millis(1));
    loop {
        if outcome.sessions >= options.max_sessions {
            return Err(transport_err(format!(
                "gave up after {} sessions without completing the stream",
                outcome.sessions
            )));
        }
        let dialed = dial().and_then(|mut link| {
            let hs = link.handshake(believed, tenant, options.policy.idle_limit)?;
            Ok((link, hs))
        });
        let (mut link, hs) = match dialed {
            Ok(ok) => ok,
            Err(e) => {
                // A quarantine reject is permanent: retrying would only be
                // rejected again for the daemon's whole lifetime.
                if !options.retry || e.kind() == io::ErrorKind::PermissionDenied {
                    return Err(e);
                }
                if downtime >= options.policy.idle_limit {
                    return Err(transport_err(format!(
                        "connection failed after retries ({e})"
                    )));
                }
                std::thread::sleep(backoff);
                downtime += backoff;
                backoff = (backoff * 2).min(options.policy.max_backoff.max(backoff));
                continue;
            }
        };
        outcome.sessions += 1;
        tenant = hs.tenant;
        outcome.tenant = hs.tenant;
        downtime = Duration::ZERO;
        backoff = options.policy.initial_backoff.max(Duration::from_millis(1));
        let resume = hs.resume_offset;
        input.seek_to(resume)?;
        let mut offset = resume;
        let mut last_ack = resume;
        match run_session(
            &mut link,
            input,
            options,
            &mut offset,
            &mut last_ack,
            &mut high_water,
            &mut outcome,
            &mut chunk,
        )? {
            SessionEnd::Done => {
                outcome.acked = last_ack;
                return Ok(outcome);
            }
            SessionEnd::Lost(e) => {
                if !options.retry {
                    return Err(e);
                }
                believed = last_ack;
            }
        }
    }
}

/// [`send_stream`] over real sockets: dials `endpoint` with [`WireLink`].
///
/// # Errors
///
/// See [`send_stream`].
pub fn send_to(
    endpoint: &Endpoint,
    input: &mut impl SendInput,
    options: &SendOptions,
) -> io::Result<SendOutcome> {
    let ep = endpoint.clone();
    send_stream(input, move || WireLink::connect(&ep), options)
}

// ---------------------------------------------------------------------------
// Multi-tenant server
// ---------------------------------------------------------------------------

/// Admission-control and overload-protection knobs for [`TenantServer`].
#[derive(Debug, Clone, Copy)]
pub struct TenantLimits {
    /// Maximum concurrently connected producers. Further HELLOs get a typed
    /// BUSY reject (the client surfaces it as `ConnectionRefused`).
    pub max_clients: usize,
    /// Bounded pending-accept queue: connections allowed to sit in the
    /// handshake state at once. Overflow is rejected with BUSY immediately,
    /// before any handshake bytes are read.
    pub max_pending: usize,
    /// Global staged-byte budget across all tenant pipelines. While the sum
    /// of staged (committed but not yet consumed) bytes exceeds it, reads —
    /// and therefore new commits and acks — are withheld from tenants above
    /// their fair share, throttling the heaviest producers first. Committed
    /// records are never dropped.
    pub stage_budget: u64,
    /// Evict a connection that holds its session open without committing new
    /// bytes for this long (slow-loris). Backpressure-throttled tenants are
    /// exempt. Zero disables the check.
    pub stall_limit: Duration,
    /// Protocol violations (bad frame, offset gap, oversized DATA, FIN
    /// mismatch) or slow-loris evictions a tenant may accumulate before it
    /// is quarantined for the rest of the daemon's life.
    pub quarantine_after: u32,
}

impl Default for TenantLimits {
    fn default() -> Self {
        Self {
            max_clients: 8,
            max_pending: 16,
            stage_budget: 8 * 1024 * 1024,
            stall_limit: Duration::from_secs(30),
            quarantine_after: 3,
        }
    }
}

/// Where a [`TenantServer`] delivers per-tenant bytes and incidents.
///
/// The simulator side implements this by binding each tenant to its own
/// ingest pipeline (own `System`, fault ledger, checkpoint file, verdict).
/// The server guarantees `data` for a tenant carries exactly its canonical
/// byte stream, in order, deduplicated — identical to what a solo
/// [`SocketSource`] would deliver for that producer.
pub trait TenantSink {
    /// A new tenant was admitted. An error refuses the admission (the
    /// producer gets a BUSY reject).
    ///
    /// # Errors
    ///
    /// Any error refuses the admission.
    fn open(&mut self, tenant: u64) -> io::Result<()>;

    /// Committed canonical bytes for `tenant`, in order. An error marks the
    /// tenant's pipeline dead: the server closes the tenant and drops its
    /// connection.
    ///
    /// # Errors
    ///
    /// Any error fails the tenant (not the server).
    fn data(&mut self, tenant: u64, bytes: &[u8]) -> io::Result<()>;

    /// A connection-level incident for `tenant`'s fault ledger.
    fn event(&mut self, tenant: u64, event: TransportEvent);

    /// The tenant's stream ended (FIN acked, quarantined, evicted, or
    /// drained): no more bytes will arrive.
    fn close(&mut self, tenant: u64);

    /// Bytes delivered to `tenant` but not yet consumed by its pipeline
    /// (drives the global backpressure budget).
    fn staged(&self, tenant: u64) -> u64;
}

/// What one [`TenantServer::poll`] round accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerPoll {
    /// Work was done; poll again immediately.
    Busy,
    /// Nothing to do right now; sleep briefly before the next poll.
    Idle,
    /// The server finished: drained on request, or idled out with every
    /// admitted tenant closed.
    Done,
}

/// Writes all of `buf` to a non-blocking wire. A full peer receive window
/// surfaces as `WouldBlock`; callers treat that as a dead or misbehaving
/// peer and close the connection, so a partially written control frame is
/// never observed by a live session.
fn write_now(wire: &mut Wire, buf: &[u8]) -> io::Result<()> {
    let mut at = 0;
    while at < buf.len() {
        match wire.write(&buf[at..]) {
            Ok(0) => return Err(conn_closed()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Cap on buffered unparsed bytes per connection: one maximal DATA frame
/// plus read slack. Beyond this the server stops reading the connection,
/// pushing backpressure into the kernel socket buffer.
const CONN_RBUF_CAP: usize = DATA_HEADER + MAX_DATA_BYTES + 16 * 1024;

/// A connection that has been accepted but not yet completed its HELLO.
#[derive(Debug)]
struct PendingConn {
    wire: Wire,
    buf: [u8; HANDSHAKE_BYTES],
    got: usize,
    since: Instant,
}

/// One live, handshaken producer connection bound to a tenant.
#[derive(Debug)]
struct MultiConn {
    wire: Wire,
    tenant: u64,
    session: u64,
    rbuf: Vec<u8>,
    rat: usize,
    last_read: Instant,
    last_ack: u64,
}

/// Per-tenant serving state (survives reconnects; one per token).
#[derive(Debug)]
struct TenantMeta {
    committed: u64,
    sessions: u64,
    violations: u32,
    stalls: u32,
    finished: bool,
    quarantined: bool,
    last_progress: Instant,
    last_seen: Instant,
}

/// A poll-based multi-tenant accept loop: many concurrent producer
/// sessions, each bound to its own tenant pipeline through a [`TenantSink`].
///
/// Replaces [`SocketSource`]'s one-session-at-a-time supervision for
/// listening daemons. Every connection runs a non-blocking state machine
/// (pending handshake → live session); per-tenant commit/dedup logic is
/// identical to the solo path, so each tenant's canonical byte stream — and
/// therefore its verdict — is independent of whoever else is connected.
///
/// Robustness machinery: admission control with typed BUSY rejects
/// ([`TenantLimits::max_clients`], bounded pending-accept queue), per-tenant
/// stall/slow-loris eviction and quarantine (a protocol violation in one
/// tenant closes *that* tenant; the server keeps serving the rest), a global
/// staged-byte budget that throttles the heaviest tenants before anything
/// is shed, and graceful drain across all live sessions via
/// [`TenantServer::with_drain_flag`].
#[derive(Debug)]
pub struct TenantServer {
    listener: Listener,
    policy: FollowPolicy,
    tuning: SocketTuning,
    limits: TenantLimits,
    pending: Vec<PendingConn>,
    conns: Vec<MultiConn>,
    tenants: std::collections::BTreeMap<u64, TenantMeta>,
    next_tenant: u64,
    drain: Option<&'static AtomicBool>,
    drained: bool,
    last_activity: Instant,
}

impl TenantServer {
    /// Wraps a bound listener with reconnect policy `policy` and admission
    /// limits `limits`.
    pub fn new(listener: Listener, policy: FollowPolicy, limits: TenantLimits) -> Self {
        Self {
            listener,
            policy,
            tuning: SocketTuning::default(),
            limits,
            pending: Vec::new(),
            conns: Vec::new(),
            tenants: std::collections::BTreeMap::new(),
            next_tenant: 1,
            drain: None,
            drained: false,
            last_activity: Instant::now(),
        }
    }

    /// Overrides ack cadence / handshake deadline.
    #[must_use]
    pub fn with_tuning(mut self, tuning: SocketTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a drain flag: once it reads `true`, the next poll sends a
    /// protocol GOODBYE to every live session, ledgers a drain marker per
    /// live tenant, closes all pipelines, and reports [`ServerPoll::Done`].
    #[must_use]
    pub fn with_drain_flag(mut self, flag: &'static AtomicBool) -> Self {
        self.drain = Some(flag);
        self
    }

    /// The endpoint actually bound (resolves TCP port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` errors.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        self.listener.local_endpoint()
    }

    /// Number of tenants admitted so far (including finished ones).
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Recommended sleep between [`ServerPoll::Idle`] polls.
    pub fn poll_interval(&self) -> Duration {
        (self.policy.idle_limit / 50).clamp(Duration::from_millis(1), Duration::from_millis(25))
    }

    fn drain_requested(&self) -> bool {
        self.drain.is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Runs one non-blocking round of the accept/handshake/session state
    /// machines. Call in a loop, sleeping [`TenantServer::poll_interval`]
    /// between [`ServerPoll::Idle`] rounds, until [`ServerPoll::Done`].
    ///
    /// # Errors
    ///
    /// Only listener-level failures (a broken accept socket) are fatal;
    /// per-connection and per-tenant failures are contained and ledgered.
    pub fn poll(&mut self, sink: &mut dyn TenantSink) -> io::Result<ServerPoll> {
        if self.drained {
            return Ok(ServerPoll::Done);
        }
        if self.drain_requested() {
            self.goodbye_all(sink);
            return Ok(ServerPoll::Done);
        }
        let mut active = false;
        active |= self.accept_new()?;
        active |= self.advance_handshakes(sink);
        active |= self.pump_conns(sink);
        self.reap_tenants(sink);
        if self.conns.is_empty()
            && self.pending.is_empty()
            && self.last_activity.elapsed() >= self.policy.idle_limit
        {
            self.finish_all(sink);
            self.drained = true;
            return Ok(ServerPoll::Done);
        }
        Ok(if active {
            ServerPoll::Busy
        } else {
            ServerPoll::Idle
        })
    }

    /// Accepts whatever is queued on the listener, bouncing overflow with a
    /// typed BUSY reject before any handshake bytes are read.
    fn accept_new(&mut self) -> io::Result<bool> {
        let mut active = false;
        while let Some(wire) = self.listener.accept()? {
            active = true;
            self.last_activity = Instant::now();
            if self.pending.len() >= self.limits.max_pending {
                let mut wire = wire;
                let _ = wire.set_nonblocking(true);
                let _ = write_now(&mut wire, &reply_bytes(STATUS_BUSY, 0, 0));
                let _ = wire.shutdown();
                continue;
            }
            if wire.set_nonblocking(true).is_err() {
                let _ = wire.shutdown();
                continue;
            }
            self.pending.push(PendingConn {
                wire,
                buf: [0u8; HANDSHAKE_BYTES],
                got: 0,
                since: Instant::now(),
            });
        }
        Ok(active)
    }

    /// Advances every pending handshake one non-blocking step.
    fn advance_handshakes(&mut self, sink: &mut dyn TenantSink) -> bool {
        let mut active = false;
        let mut pending = std::mem::take(&mut self.pending);
        for mut p in pending.drain(..) {
            loop {
                if p.got == HANDSHAKE_BYTES {
                    active = true;
                    let PendingConn { wire, buf, .. } = p;
                    self.admit(wire, &buf, sink);
                    break;
                }
                match p.wire.read(&mut p.buf[p.got..]) {
                    Ok(0) => {
                        // Vanished before completing HELLO; nothing to ledger
                        // (no tenant was ever bound).
                        let _ = p.wire.shutdown();
                        break;
                    }
                    Ok(n) => {
                        p.got += n;
                        active = true;
                    }
                    Err(e) if is_timeout(&e) => {
                        if p.since.elapsed() >= self.tuning.handshake_timeout {
                            let _ = p.wire.shutdown();
                        } else {
                            self.pending.push(p);
                        }
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        let _ = p.wire.shutdown();
                        break;
                    }
                }
            }
        }
        active
    }

    /// Validates a completed HELLO, resolves its tenant token, applies
    /// admission control, and either binds the connection or rejects it.
    fn admit(&mut self, mut wire: Wire, hello: &[u8; HANDSHAKE_BYTES], sink: &mut dyn TenantSink) {
        self.last_activity = Instant::now();
        if hello[..4] != HELLO_MAGIC {
            let _ = wire.shutdown();
            return;
        }
        let version = u16::from_le_bytes(hello[4..6].try_into().unwrap());
        if version != TRANSPORT_VERSION {
            let _ = write_now(&mut wire, &reply_bytes(STATUS_BAD_VERSION, 0, 0));
            let _ = wire.shutdown();
            return;
        }
        let token = u64::from_le_bytes(hello[16..24].try_into().unwrap());
        if let Some(meta) = self.tenants.get(&token) {
            if meta.quarantined {
                let _ = write_now(
                    &mut wire,
                    &reply_bytes(STATUS_QUARANTINED, meta.committed, token),
                );
                let _ = wire.shutdown();
                return;
            }
        }
        // Admission: count live sessions, where a reconnect that will
        // supersede an existing connection for the same tenant is not a new
        // client.
        let supersedes = self.conns.iter().any(|c| c.tenant == token);
        if !supersedes && self.conns.len() >= self.limits.max_clients {
            let _ = write_now(&mut wire, &reply_bytes(STATUS_BUSY, 0, token));
            let _ = wire.shutdown();
            return;
        }
        let tenant = if token == 0 {
            let t = self.next_tenant;
            self.next_tenant += 1;
            t
        } else {
            self.next_tenant = self.next_tenant.max(token + 1);
            token
        };
        if let std::collections::btree_map::Entry::Vacant(slot) = self.tenants.entry(tenant) {
            if sink.open(tenant).is_err() {
                let _ = write_now(&mut wire, &reply_bytes(STATUS_BUSY, 0, tenant));
                let _ = wire.shutdown();
                return;
            }
            slot.insert(TenantMeta {
                committed: 0,
                sessions: 0,
                violations: 0,
                stalls: 0,
                finished: false,
                quarantined: false,
                last_progress: Instant::now(),
                last_seen: Instant::now(),
            });
        }
        let meta = self.tenants.get_mut(&tenant).expect("just ensured");
        meta.sessions += 1;
        let session = meta.sessions;
        let committed = meta.committed;
        meta.last_progress = Instant::now();
        meta.last_seen = Instant::now();
        if write_now(&mut wire, &reply_bytes(STATUS_OK, committed, tenant)).is_err() {
            let _ = wire.shutdown();
            sink.event(
                tenant,
                TransportEvent::Disconnected {
                    session,
                    offset: committed,
                    reason: DisconnectReason::Io,
                },
            );
            return;
        }
        if session > 1 || committed > 0 {
            sink.event(
                tenant,
                TransportEvent::SessionResumed {
                    session,
                    offset: committed,
                },
            );
        }
        // A reconnect supersedes any stale connection still bound to the
        // same tenant (e.g. after a half-dead network partition).
        if let Some(at) = self.conns.iter().position(|c| c.tenant == tenant) {
            let old = self.conns.swap_remove(at);
            let _ = old.wire.shutdown();
            sink.event(
                tenant,
                TransportEvent::Disconnected {
                    session: old.session,
                    offset: committed,
                    reason: DisconnectReason::Stall,
                },
            );
        }
        self.conns.push(MultiConn {
            wire,
            tenant,
            session,
            rbuf: Vec::with_capacity(64 * 1024),
            rat: 0,
            last_read: Instant::now(),
            last_ack: committed,
        });
    }

    /// Runs every live connection's read/parse/commit state machine once.
    #[allow(clippy::too_many_lines)]
    fn pump_conns(&mut self, sink: &mut dyn TenantSink) -> bool {
        let mut active = false;
        let live = self.conns.len().max(1) as u64;
        let total_staged: u64 = self.conns.iter().map(|c| sink.staged(c.tenant)).sum();
        let over_budget = total_staged > self.limits.stage_budget;
        let fair_share = self.limits.stage_budget / live;
        let mut conns = std::mem::take(&mut self.conns);
        for mut conn in conns.drain(..) {
            let tenant = conn.tenant;
            // Global backpressure: while the staging budget is blown, stop
            // reading (and therefore committing and acking) tenants above
            // their fair share. Throttling the heaviest producers first
            // sheds load without ever dropping a committed record.
            let throttled = over_budget && sink.staged(tenant) > fair_share;
            let mut eof = false;
            let mut io_dead = false;
            if !throttled {
                if conn.rat > 0 {
                    conn.rbuf.drain(..conn.rat);
                    conn.rat = 0;
                }
                let mut scratch = [0u8; 16 * 1024];
                for _ in 0..16 {
                    if conn.rbuf.len() >= CONN_RBUF_CAP {
                        break;
                    }
                    match conn.wire.read(&mut scratch) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&scratch[..n]);
                            conn.last_read = Instant::now();
                            self.last_activity = Instant::now();
                            active = true;
                        }
                        Err(e) if is_timeout(&e) => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            io_dead = true;
                            break;
                        }
                    }
                }
            }
            // Parse and commit whatever is buffered.
            let mut fate: Option<DisconnectReason> = None;
            let mut finished_tenant = false;
            loop {
                let meta = self.tenants.get_mut(&tenant).expect("tenant bound");
                let parsed = match parse_frame(&conn.rbuf[conn.rat..]) {
                    Ok(p) => p,
                    Err(()) => {
                        fate = Some(DisconnectReason::Protocol);
                        break;
                    }
                };
                let Some((frame, consumed)) = parsed else {
                    break;
                };
                match frame {
                    Frame::Data { offset, start, len } => {
                        let start = conn.rat + start;
                        conn.rat += consumed;
                        match commit_data(meta, &mut conn, sink, &self.tuning, offset, start, len) {
                            CommitOutcome::Ok => {
                                meta.last_progress = Instant::now();
                            }
                            CommitOutcome::Duplicate => {}
                            CommitOutcome::Violation => {
                                fate = Some(DisconnectReason::Protocol);
                                break;
                            }
                            CommitOutcome::SinkDead => {
                                // The tenant's pipeline died (decode error,
                                // refused resume): fail the tenant, keep the
                                // server.
                                finished_tenant = true;
                                fate = Some(DisconnectReason::Io);
                                break;
                            }
                            CommitOutcome::PeerDead => {
                                fate = Some(DisconnectReason::Io);
                                break;
                            }
                        }
                    }
                    Frame::Heartbeat => {
                        conn.rat += consumed;
                    }
                    Frame::Fin { total } => {
                        conn.rat += consumed;
                        if total == meta.committed {
                            let _ = write_now(&mut conn.wire, &tagged_u64(TAG_ACK, total));
                            let _ = conn.wire.shutdown();
                            meta.finished = true;
                            meta.last_seen = Instant::now();
                            sink.close(tenant);
                            finished_tenant = true;
                        } else {
                            fate = Some(DisconnectReason::Protocol);
                        }
                        break;
                    }
                }
            }
            let meta = self.tenants.get_mut(&tenant).expect("tenant bound");
            if finished_tenant && fate.is_none() {
                // FIN handled: connection closed cleanly, tenant done.
                self.last_activity = Instant::now();
                active = true;
                continue;
            }
            if fate.is_none() {
                if eof {
                    fate = Some(DisconnectReason::Eof);
                } else if io_dead {
                    fate = Some(DisconnectReason::Io);
                } else if conn.last_read.elapsed() >= self.policy.idle_limit {
                    fate = Some(DisconnectReason::Stall);
                } else if !throttled
                    && !self.limits.stall_limit.is_zero()
                    && meta.last_progress.elapsed() >= self.limits.stall_limit
                {
                    // Slow-loris: the session is alive (heartbeats keep it
                    // from idling out) but commits nothing. Evict it; repeat
                    // offenders are quarantined.
                    meta.stalls += 1;
                    fate = Some(DisconnectReason::Stall);
                }
            }
            let Some(reason) = fate else {
                // Flush a pending ack so a quiet producer blocked on flow
                // control can make progress.
                if meta.committed > conn.last_ack {
                    let committed = meta.committed;
                    if write_now(&mut conn.wire, &tagged_u64(TAG_ACK, committed)).is_ok() {
                        conn.last_ack = committed;
                    }
                }
                meta.last_seen = Instant::now();
                self.conns.push(conn);
                continue;
            };
            // The connection is done for: ledger the disconnect, then decide
            // whether the tenant itself must be punished.
            active = true;
            self.last_activity = Instant::now();
            let _ = conn.wire.shutdown();
            if reason == DisconnectReason::Protocol {
                meta.violations += 1;
            }
            sink.event(
                tenant,
                TransportEvent::Disconnected {
                    session: conn.session,
                    offset: meta.committed,
                    reason,
                },
            );
            if finished_tenant && !meta.finished {
                meta.finished = true;
                sink.close(tenant);
            }
            let strikes = meta.violations.max(meta.stalls);
            if strikes >= self.limits.quarantine_after && !meta.quarantined {
                meta.quarantined = true;
                sink.event(
                    tenant,
                    TransportEvent::Quarantined {
                        session: conn.session,
                        offset: meta.committed,
                        violations: u64::from(meta.violations) + u64::from(meta.stalls),
                    },
                );
                if !meta.finished {
                    meta.finished = true;
                    sink.close(tenant);
                }
            }
            meta.last_seen = Instant::now();
        }
        active
    }

    /// Closes tenants whose producer has been gone longer than the idle
    /// limit (no connection to resume the stream).
    fn reap_tenants(&mut self, sink: &mut dyn TenantSink) {
        let idle_limit = self.policy.idle_limit;
        let connected: Vec<u64> = self.conns.iter().map(|c| c.tenant).collect();
        for (tenant, meta) in &mut self.tenants {
            if !meta.finished
                && !connected.contains(tenant)
                && meta.last_seen.elapsed() >= idle_limit
            {
                meta.finished = true;
                sink.close(*tenant);
            }
        }
    }

    /// Graceful drain: protocol GOODBYE to every live session, a drain
    /// marker in every live tenant's ledger, all pipelines closed.
    fn goodbye_all(&mut self, sink: &mut dyn TenantSink) {
        for mut conn in self.conns.drain(..) {
            let committed = self
                .tenants
                .get(&conn.tenant)
                .map_or(0, |meta| meta.committed);
            let _ = write_now(&mut conn.wire, &tagged_u64(TAG_GOODBYE, committed));
            let _ = conn.wire.shutdown();
        }
        for p in self.pending.drain(..) {
            let _ = p.wire.shutdown();
        }
        for (tenant, meta) in &mut self.tenants {
            if !meta.finished {
                meta.finished = true;
                sink.event(
                    *tenant,
                    TransportEvent::Drained {
                        offset: meta.committed,
                    },
                );
                sink.close(*tenant);
            }
        }
        self.drained = true;
    }

    /// Idle-out: close any tenant still open, without drain markers.
    fn finish_all(&mut self, sink: &mut dyn TenantSink) {
        for (tenant, meta) in &mut self.tenants {
            if !meta.finished {
                meta.finished = true;
                sink.close(*tenant);
            }
        }
    }
}

/// How committing one DATA frame for a tenant went.
enum CommitOutcome {
    /// New bytes were committed and delivered to the sink.
    Ok,
    /// The frame was entirely already-committed bytes (dropped, re-acked).
    Duplicate,
    /// Offset gap or arithmetic overflow: protocol violation.
    Violation,
    /// The tenant's pipeline rejected the bytes (it is dead).
    SinkDead,
    /// The peer stopped reading acks (its receive window is full).
    PeerDead,
}

/// Commits one DATA frame for a tenant: trims or drops bytes the server
/// already committed, forwards the new suffix to the sink, acks on cadence.
/// Mirrors [`SocketSource::stage_data`] so a tenant's canonical stream is
/// identical to the solo path.
fn commit_data(
    meta: &mut TenantMeta,
    conn: &mut MultiConn,
    sink: &mut dyn TenantSink,
    tuning: &SocketTuning,
    offset: u64,
    start: usize,
    len: usize,
) -> CommitOutcome {
    let Some(end) = offset.checked_add(len as u64) else {
        return CommitOutcome::Violation;
    };
    if offset > meta.committed {
        // A gap means lost bytes the server never acked: protocol violation.
        return CommitOutcome::Violation;
    }
    if meta.finished {
        // The stream was finalized (FIN acked); a full duplicate is a
        // harmless retransmit, anything new is a violation.
        if end <= meta.committed {
            sink.event(
                conn.tenant,
                TransportEvent::DuplicateDropped {
                    session: conn.session,
                    offset: meta.committed,
                    bytes: len as u64,
                },
            );
            return CommitOutcome::Duplicate;
        }
        return CommitOutcome::Violation;
    }
    let skip = (meta.committed - offset) as usize;
    if skip >= len {
        sink.event(
            conn.tenant,
            TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: meta.committed,
                bytes: len as u64,
            },
        );
        // Re-ack so a client that missed the original ack advances.
        conn.last_ack = meta.committed;
        if write_now(&mut conn.wire, &tagged_u64(TAG_ACK, meta.committed)).is_err() {
            return CommitOutcome::PeerDead;
        }
        return CommitOutcome::Duplicate;
    }
    if skip > 0 {
        sink.event(
            conn.tenant,
            TransportEvent::DuplicateDropped {
                session: conn.session,
                offset: meta.committed,
                bytes: skip as u64,
            },
        );
    }
    if sink
        .data(conn.tenant, &conn.rbuf[start + skip..start + len])
        .is_err()
    {
        return CommitOutcome::SinkDead;
    }
    meta.committed = end;
    if meta.committed - conn.last_ack >= tuning.ack_every {
        conn.last_ack = meta.committed;
        if write_now(&mut conn.wire, &tagged_u64(TAG_ACK, meta.committed)).is_err() {
            return CommitOutcome::PeerDead;
        }
    }
    CommitOutcome::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn fast_policy() -> FollowPolicy {
        FollowPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            idle_limit: Duration::from_secs(5),
        }
    }

    fn drain_all(src: &mut SocketSource) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            out.extend_from_slice(c);
        }
        out
    }

    fn unix_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("impress-transport-{tag}-{}", std::process::id()))
    }

    #[test]
    fn endpoint_parse_roundtrip() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7700").unwrap(),
            Endpoint::Tcp("127.0.0.1:7700".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///run/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/run/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp://10.0.0.1:9").unwrap().to_string(),
            "tcp://10.0.0.1:9"
        );
        assert!(Endpoint::parse("udp://x").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("unix://").is_err());
    }

    #[test]
    fn loopback_tcp_roundtrip_with_fin() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            let mut input = MemInput::new(payload);
            let options = SendOptions {
                policy: fast_policy(),
                data_bytes: 4096,
                ..SendOptions::default()
            };
            send_to(&ep, &mut input, &options).unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got, expect);
        assert!(outcome.complete);
        assert_eq!(outcome.sessions, 1);
        assert_eq!(outcome.acked, expect.len() as u64);
        assert!(src.take_transport_events().is_empty());
    }

    #[test]
    fn loopback_unix_roundtrip_with_fin() {
        let path = unix_path("unix-roundtrip");
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            let mut input = MemInput::new(payload);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: fast_policy(),
                    data_bytes: 1000,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        assert!(client.join().unwrap().complete);
        assert_eq!(got, expect);
        assert!(
            !path.exists() || {
                drop(src);
                !path.exists()
            }
        );
    }

    #[test]
    fn server_dedups_retransmitted_bytes() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let client = thread::spawn(move || {
            let mut link = WireLink::connect(&ep).unwrap();
            let hs = link.handshake(0, 0, Duration::from_secs(5)).unwrap();
            assert_eq!(hs.resume_offset, 0);
            assert_eq!(hs.tenant, 1);
            link.send_data(0, &[1u8; 100]).unwrap();
            // Full duplicate, then an overlapping frame with a fresh suffix.
            link.send_data(0, &[1u8; 100]).unwrap();
            let mut mixed = vec![1u8; 50];
            mixed.extend_from_slice(&[2u8; 60]);
            link.send_data(50, &mixed).unwrap();
            link.send_fin(160).unwrap();
            loop {
                match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                    Some(ServerReply::Ack(a)) if a >= 160 => break,
                    Some(_) | None => {}
                }
            }
        });
        let got = drain_all(&mut src);
        client.join().unwrap();
        let mut expect = vec![1u8; 100];
        expect.extend_from_slice(&[2u8; 60]);
        assert_eq!(got, expect);
        let events = src.take_transport_events();
        let dup_bytes: u64 = events
            .iter()
            .map(|e| match e {
                TransportEvent::DuplicateDropped { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(dup_bytes, 150, "events: {events:?}");
    }

    #[test]
    fn reconnect_resumes_from_committed_offset() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        // Tight ack cadence so session 1 can observe its prefix committing.
        let mut src = SocketSource::new(listener, fast_policy()).with_tuning(SocketTuning {
            ack_every: 1024,
            ..SocketTuning::default()
        });
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 239) as u8).collect();
        let expect = payload.clone();
        let client = thread::spawn(move || {
            // Session 1: deliver a prefix, then vanish without FIN.
            let mut link = WireLink::connect(&ep).unwrap();
            link.handshake(0, 0, Duration::from_secs(5)).unwrap();
            link.send_data(0, &payload[..10_000]).unwrap();
            loop {
                // Wait until the prefix is committed (acked) so the resume
                // offset is deterministic.
                match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                    Some(ServerReply::Ack(a)) if a >= 10_000 => break,
                    _ => {}
                }
            }
            drop(link);
            // Session 2: announce a stale offset; the server's reply wins.
            let mut input = MemInput::new(payload);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: fast_policy(),
                    data_bytes: 4096,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got, expect);
        assert!(outcome.complete);
        let events = src.take_transport_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                TransportEvent::Disconnected {
                    reason: DisconnectReason::Eof,
                    ..
                }
            )),
            "events: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TransportEvent::SessionResumed { offset: 10_000, .. })),
            "events: {events:?}"
        );
    }

    #[test]
    fn idle_listener_times_out_cleanly() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let mut src = SocketSource::new(
            listener,
            FollowPolicy {
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
                idle_limit: Duration::from_millis(40),
            },
        );
        assert!(src.next_chunk().unwrap().is_none());
        assert!(src.take_transport_events().is_empty());
    }

    #[test]
    fn drain_flag_sends_goodbye_and_ends_stream() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy()).with_drain_flag(flag);
        let client = thread::spawn(move || {
            let mut link = WireLink::connect(&ep).unwrap();
            link.handshake(0, 0, Duration::from_secs(5)).unwrap();
            link.send_data(0, &[7u8; 500]).unwrap();
            // Heartbeat-idle until the goodbye arrives.
            loop {
                match link.recv_reply(Some(Duration::from_millis(20))).unwrap() {
                    Some(ServerReply::Goodbye(g)) => return g,
                    Some(ServerReply::Ack(_)) => {}
                    None => link.send_heartbeat().unwrap(),
                }
            }
        });
        let first = src.next_chunk().unwrap().unwrap().to_vec();
        assert_eq!(first, vec![7u8; 500]);
        flag.store(true, Ordering::SeqCst);
        assert!(src.next_chunk().unwrap().is_none());
        let committed = client.join().unwrap();
        assert_eq!(committed, 500);
        let events = src.take_transport_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TransportEvent::Drained { offset: 500 })),
            "events: {events:?}"
        );
    }

    #[test]
    fn follow_mode_sender_fins_after_input_goes_idle() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut src = SocketSource::new(listener, fast_policy());
        let client = thread::spawn(move || {
            let mut input = MemInput::new(vec![3u8; 2000]);
            send_to(
                &ep,
                &mut input,
                &SendOptions {
                    policy: FollowPolicy {
                        initial_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(5),
                        idle_limit: Duration::from_millis(50),
                    },
                    follow: true,
                    data_bytes: 512,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let got = drain_all(&mut src);
        let outcome = client.join().unwrap();
        assert_eq!(got.len(), 2000);
        assert!(outcome.complete);
    }

    #[test]
    fn reader_input_skips_forward_but_never_rewinds() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut input = ReaderInput::new(&data[..]);
        input.seek_to(10).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(input.read_more(&mut buf).unwrap(), 4);
        assert_eq!(&buf, &[10, 11, 12, 13]);
        let err = input.seek_to(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn forward_only_input_fails_typed_when_daemon_rewinds_resume() {
        // A scripted daemon that accepts bytes without acking, cuts the
        // connection, then offers resume offset 0 on the next session — the
        // worst case for a stdin/FIFO producer, which has already consumed
        // those bytes and cannot rewind. send_stream must surface the typed
        // `Unsupported` error instead of silently skipping or duplicating.
        struct Amnesiac {
            sent: u64,
        }
        impl ClientLink for Amnesiac {
            fn handshake(
                &mut self,
                _start: u64,
                _tenant: u64,
                _timeout: Duration,
            ) -> io::Result<Handshake> {
                Ok(Handshake {
                    resume_offset: 0,
                    tenant: 1,
                })
            }
            fn send_data(&mut self, _offset: u64, payload: &[u8]) -> io::Result<()> {
                self.sent += payload.len() as u64;
                if self.sent >= 4096 {
                    return Err(io::Error::new(io::ErrorKind::ConnectionReset, "cut"));
                }
                Ok(())
            }
            fn send_heartbeat(&mut self) -> io::Result<()> {
                Ok(())
            }
            fn send_fin(&mut self, _total: u64) -> io::Result<()> {
                Ok(())
            }
            fn recv_reply(&mut self, _wait: Option<Duration>) -> io::Result<Option<ServerReply>> {
                Ok(None) // never acks, so nothing is safe to skip on resume
            }
        }
        let data = vec![7u8; 32 * 1024];
        let mut input = ReaderInput::new(&data[..]);
        let err = send_stream(
            &mut input,
            || Ok(Amnesiac { sent: 0 }),
            &SendOptions {
                policy: fast_policy(),
                data_bytes: 1024,
                ..SendOptions::default()
            },
        )
        .expect_err("rewinding a forward-only input must fail");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn no_retry_client_reports_connect_failure() {
        // Nothing is listening on this endpoint (bound then dropped).
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        drop(listener);
        let mut input = MemInput::new(vec![0u8; 16]);
        let err = send_to(
            &ep,
            &mut input,
            &SendOptions {
                retry: false,
                ..SendOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.kind() == io::ErrorKind::ConnectionRefused || is_timeout(&err));
    }

    #[test]
    fn retry_client_gives_up_after_idle_budget() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        drop(listener);
        let mut input = MemInput::new(vec![0u8; 16]);
        let err = send_to(
            &ep,
            &mut input,
            &SendOptions {
                retry: true,
                policy: FollowPolicy {
                    initial_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(5),
                    idle_limit: Duration::from_millis(30),
                },
                ..SendOptions::default()
            },
        )
        .unwrap_err();
        assert!(is_timeout(&err), "got {err:?}");
    }

    // -- multi-tenant server ------------------------------------------------

    use std::collections::BTreeMap;

    #[derive(Debug, Default)]
    struct TestSink {
        data: BTreeMap<u64, Vec<u8>>,
        events: BTreeMap<u64, Vec<TransportEvent>>,
        closed: Vec<u64>,
    }

    impl TenantSink for TestSink {
        fn open(&mut self, tenant: u64) -> io::Result<()> {
            self.data.entry(tenant).or_default();
            Ok(())
        }

        fn data(&mut self, tenant: u64, bytes: &[u8]) -> io::Result<()> {
            self.data
                .get_mut(&tenant)
                .expect("opened")
                .extend_from_slice(bytes);
            Ok(())
        }

        fn event(&mut self, tenant: u64, event: TransportEvent) {
            self.events.entry(tenant).or_default().push(event);
        }

        fn close(&mut self, tenant: u64) {
            self.closed.push(tenant);
        }

        fn staged(&self, _tenant: u64) -> u64 {
            0
        }
    }

    fn serve_until_done(mut server: TenantServer, mut sink: TestSink) -> TestSink {
        loop {
            match server.poll(&mut sink).unwrap() {
                ServerPoll::Busy => {}
                ServerPoll::Idle => thread::sleep(server.poll_interval()),
                ServerPoll::Done => return sink,
            }
        }
    }

    fn quick_policy() -> FollowPolicy {
        FollowPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            idle_limit: Duration::from_millis(400),
        }
    }

    #[test]
    fn tenant_server_serves_concurrent_producers_in_isolation() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let server = TenantServer::new(listener, quick_policy(), TenantLimits::default());
        let ep = server.local_endpoint().unwrap();
        let clients: Vec<_> = (0..4u8)
            .map(|i| {
                let ep = ep.clone();
                thread::spawn(move || {
                    let mut input = MemInput::new(vec![i + 1; 20_000 + 1000 * i as usize]);
                    send_to(
                        &ep,
                        &mut input,
                        &SendOptions {
                            policy: quick_policy(),
                            data_bytes: 2048,
                            ..SendOptions::default()
                        },
                    )
                    .unwrap()
                })
            })
            .collect();
        let sink = serve_until_done(server, TestSink::default());
        let mut tokens = Vec::new();
        for c in clients {
            let outcome = c.join().unwrap();
            assert!(outcome.complete);
            tokens.push(outcome.tenant);
        }
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 4, "each producer got its own tenant token");
        for token in tokens {
            let bytes = &sink.data[&token];
            // Every tenant's stream is uniform in its own fill byte: no
            // cross-tenant interleaving, and each stream is complete.
            assert!(!bytes.is_empty());
            let fill = bytes[0];
            assert!(bytes.iter().all(|&b| b == fill));
            assert_eq!(bytes.len(), 20_000 + 1000 * (fill - 1) as usize);
        }
        assert_eq!(sink.closed.len(), 4);
    }

    #[test]
    fn tenant_server_rejects_over_capacity_with_typed_busy() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let server = TenantServer::new(
            listener,
            quick_policy(),
            TenantLimits {
                max_clients: 1,
                ..TenantLimits::default()
            },
        );
        let ep = server.local_endpoint().unwrap();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let ep1 = ep.clone();
        let holder = thread::spawn(move || {
            let mut link = WireLink::connect(&ep1).unwrap();
            link.handshake(0, 0, Duration::from_secs(5)).unwrap();
            link.send_data(0, &[9u8; 100]).unwrap();
            release_rx.recv().unwrap();
            link.send_fin(100).unwrap();
            loop {
                match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                    Some(ServerReply::Ack(a)) if a >= 100 => break,
                    _ => {}
                }
            }
        });
        let second = thread::spawn(move || {
            // Let the holder take the only slot first.
            thread::sleep(Duration::from_millis(100));
            let mut link = WireLink::connect(&ep).unwrap();
            let err = link.handshake(0, 0, Duration::from_secs(5)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "{err}");
            release_tx.send(()).unwrap();
        });
        let sink = serve_until_done(server, TestSink::default());
        holder.join().unwrap();
        second.join().unwrap();
        assert_eq!(sink.data.len(), 1, "only the holder was admitted");
        assert_eq!(sink.data[&1], vec![9u8; 100]);
    }

    #[test]
    fn tenant_server_quarantines_protocol_violators_and_keeps_serving() {
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let server = TenantServer::new(
            listener,
            quick_policy(),
            TenantLimits {
                quarantine_after: 2,
                ..TenantLimits::default()
            },
        );
        let ep = server.local_endpoint().unwrap();
        let hostile_ep = ep.clone();
        let hostile = thread::spawn(move || {
            let mut token = 0u64;
            for _ in 0..8 {
                let mut link = WireLink::connect(&hostile_ep).unwrap();
                match link.handshake(0, token, Duration::from_secs(5)) {
                    Ok(hs) => {
                        token = hs.tenant;
                        // An offset gap is a protocol violation.
                        link.send_data(hs.resume_offset + 4096, &[1u8; 64]).unwrap();
                        // Wait for the server to cut the connection.
                        let _ = link.recv_reply(Some(Duration::from_secs(2)));
                    }
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied, "{e}");
                        return token;
                    }
                }
                thread::sleep(Duration::from_millis(20));
            }
            panic!("hostile client was never quarantined");
        });
        let clean_ep = ep.clone();
        let clean = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            let mut input = MemInput::new(vec![5u8; 30_000]);
            send_to(
                &clean_ep,
                &mut input,
                &SendOptions {
                    policy: quick_policy(),
                    data_bytes: 1024,
                    ..SendOptions::default()
                },
            )
            .unwrap()
        });
        let sink = serve_until_done(server, TestSink::default());
        let hostile_token = hostile.join().unwrap();
        let outcome = clean.join().unwrap();
        assert!(outcome.complete);
        assert_ne!(outcome.tenant, hostile_token);
        assert_eq!(sink.data[&outcome.tenant], vec![5u8; 30_000]);
        let hostile_events = &sink.events[&hostile_token];
        assert!(
            hostile_events
                .iter()
                .any(|e| matches!(e, TransportEvent::Quarantined { .. })),
            "events: {hostile_events:?}"
        );
        assert!(sink.data[&hostile_token].is_empty());
    }

    #[test]
    fn tenant_server_drains_all_live_sessions_on_flag() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let server = TenantServer::new(listener, quick_policy(), TenantLimits::default())
            .with_drain_flag(flag);
        let ep = server.local_endpoint().unwrap();
        let server_thread = thread::spawn(move || serve_until_done(server, TestSink::default()));
        let clients: Vec<_> = (0..3u8)
            .map(|i| {
                let ep = ep.clone();
                thread::spawn(move || {
                    let mut link = WireLink::connect(&ep).unwrap();
                    link.handshake(0, 0, Duration::from_secs(5)).unwrap();
                    link.send_data(0, &[i + 1; 256]).unwrap();
                    loop {
                        match link.recv_reply(Some(Duration::from_secs(5))).unwrap() {
                            Some(ServerReply::Goodbye(g)) => return g,
                            Some(ServerReply::Ack(_)) => {}
                            None => link.send_heartbeat().unwrap(),
                        }
                    }
                })
            })
            .collect();
        // Let all three sessions commit their bytes, then drain.
        thread::sleep(Duration::from_millis(200));
        flag.store(true, Ordering::SeqCst);
        for c in clients {
            assert_eq!(c.join().unwrap(), 256);
        }
        let sink = server_thread.join().unwrap();
        assert_eq!(sink.data.len(), 3);
        for t in 1..=3u64 {
            assert_eq!(sink.data[&t].len(), 256);
            assert!(
                sink.events[&t]
                    .iter()
                    .any(|e| matches!(e, TransportEvent::Drained { offset: 256 })),
                "tenant {t} events: {:?}",
                sink.events[&t]
            );
        }
        assert_eq!(sink.closed.len(), 3);
    }
}
