//! Property suite: the trace reader under hostile bytes.
//!
//! Three guarantees, proptest-checked over seeded random damage:
//!
//! 1. **No panics** — arbitrary byte mutations and truncations of a valid
//!    trace never panic either decode mode (errors yes, panics never).
//! 2. **Strict mode always errors** when any frame byte changed — silent
//!    acceptance of damaged frames would undermine the disturbance accounting.
//! 3. **Resync mode always terminates** with a fault ledger whose
//!    `records_lost` conservatively upper-bounds the true loss — checked both
//!    against mutation ground truth (stream length is preserved, so
//!    `recovered + records_lost >= total`) and against the fault-injection
//!    harness's per-plan oracle.

use std::io;
use std::sync::OnceLock;

use impress_workloads::codec::{
    DecodeMode, TraceMeta, TraceReader, TraceRecord, TraceWriter, FRAME_RECORDS,
};
use impress_workloads::faults::{apply_plan, FaultOp, FaultPlan, FrameMap};
use impress_workloads::source::SliceSource;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Total records in the shared specimen trace (three full frames + a tail).
const TOTAL_RECORDS: u64 = 2 * FRAME_RECORDS as u64 + 700;

/// The valid specimen every case damages, built once.
fn specimen() -> &'static (Vec<u8>, FrameMap) {
    static SPECIMEN: OnceLock<(Vec<u8>, FrameMap)> = OnceLock::new();
    SPECIMEN.get_or_init(|| {
        let meta = TraceMeta {
            name: "hostile".to_string(),
            cores: 2,
            has_gaps: true,
            instructions_per_miss: vec![25.0, 75.0],
        };
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for i in 0..TOTAL_RECORDS {
            w.push(TraceRecord {
                address: i * 64 + ((i % 97) << 24),
                gap: (i % 13) as u32,
                core: (i % 2) as u8,
                is_write: i % 4 == 0,
            })
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let map = FrameMap::scan(&bytes).unwrap();
        (bytes, map)
    })
}

fn decode(bytes: &[u8], mode: DecodeMode, chunk: usize) -> io::Result<(u64, u64, bool)> {
    let mut r = TraceReader::with_mode(SliceSource::with_chunk_size(bytes, chunk), mode)?;
    let records = r.read_all()?.len() as u64;
    Ok((records, r.records_lost(), r.truncated()))
}

proptest! {
    #[test]
    fn mutations_never_panic_and_resync_bounds_the_loss(
        seed in 0u64..1 << 48,
        mutations in 1usize..9,
        chunk in 1usize..5000,
    ) {
        let (bytes, map) = specimen();
        let mut damaged = bytes.clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut touched_frames_only = true;
        for _ in 0..mutations {
            let at = rng.gen_range(0..damaged.len());
            // XOR with a non-zero mask guarantees the byte actually changes.
            damaged[at] ^= rng.gen_range(1u64..256) as u8;
            touched_frames_only &= at as u64 >= map.header_len;
        }

        // Neither mode may panic; strict must error whenever frame bytes
        // changed (mutations confined to the header can legally alter the
        // decoded metadata without tripping a checksum).
        let strict = decode(&damaged, DecodeMode::Strict, chunk);
        if touched_frames_only {
            prop_assert!(strict.is_err(), "strict mode accepted damaged frames");
        }

        if let Ok(mut r) =
            TraceReader::with_mode(SliceSource::with_chunk_size(&damaged, chunk), DecodeMode::Resync)
        {
            // Resync terminates (read_all returning is the proof) and never
            // errors on an in-memory source.
            let recovered = r.read_all().unwrap().len() as u64;
            // Mutations preserve stream length, so every original record is
            // either recovered or covered by the conservative ledger bound.
            prop_assert!(
                recovered + r.records_lost() >= TOTAL_RECORDS,
                "under-accounted: {} recovered + {} lost < {}",
                recovered,
                r.records_lost(),
                TOTAL_RECORDS
            );
            prop_assert!(recovered <= TOTAL_RECORDS);
        } else {
            // Only header damage may abort resync construction.
            prop_assert!(!touched_frames_only, "resync failed on frame-only damage");
        }
    }

    #[test]
    fn truncations_never_panic_and_are_flagged(
        cut_seed in 0u64..1 << 48,
        chunk in 1usize..5000,
    ) {
        let (bytes, map) = specimen();
        let mut rng = SmallRng::seed_from_u64(cut_seed);
        let cut = rng.gen_range(map.header_len as usize..bytes.len());
        let damaged = &bytes[..cut];

        let at_boundary = map.frames.iter().any(|f| f.end() == cut as u64)
            || cut as u64 == map.header_len;
        let full_frames_before: u64 = map
            .frames
            .iter()
            .filter(|f| f.end() <= cut as u64)
            .map(|f| f.records as u64)
            .sum();

        // Strict: clean EOF at a frame boundary, error otherwise. Never panics.
        let strict = decode(damaged, DecodeMode::Strict, chunk);
        if at_boundary {
            prop_assert_eq!(strict.unwrap().0, full_frames_before);
        } else {
            prop_assert!(strict.is_err());
        }

        // Resync: always Ok, recovers exactly the full frames, flags the cut.
        let (recovered, lost, truncated) = decode(damaged, DecodeMode::Resync, chunk).unwrap();
        prop_assert_eq!(recovered, full_frames_before);
        prop_assert_eq!(truncated, !at_boundary);
        // When at least the cut frame's header survived, its declared count
        // bounds the loss.
        if let Some(f) = map
            .frames
            .iter()
            .find(|f| f.offset < cut as u64 && (cut as u64) < f.end())
        {
            if cut as u64 >= f.offset + 8 {
                prop_assert!(lost >= f.records as u64);
            }
        }
    }

    #[test]
    fn seeded_fault_plans_match_their_oracle(
        plan_seed in 0u64..1 << 48,
        chunk in 1usize..5000,
    ) {
        let (bytes, map) = specimen();
        let plan = FaultPlan::seeded(plan_seed, map);
        let expect = plan.expected(map).expect("seeded plans always have an oracle");
        let damaged = apply_plan(bytes, &plan).unwrap();

        let (recovered, lost, truncated) = decode(&damaged, DecodeMode::Resync, chunk).unwrap();
        prop_assert_eq!(recovered, expect.intact_records);
        prop_assert!(
            lost >= expect.damaged_records,
            "ledger bound {} under-counts the injected {}",
            lost,
            expect.damaged_records
        );
        if expect.mid_frame_cut {
            prop_assert!(truncated, "mid-frame cut must set the truncated flag");
        }
        // Strict mode must refuse any stream with checksum or framing damage.
        // Frame-aligned duplication/reordering keeps every checksum valid, so
        // strict legitimately accepts those plans.
        let breaks_framing = plan.ops.iter().any(|op| {
            matches!(op, FaultOp::FlipBit { .. } | FaultOp::Truncate { .. })
        });
        if breaks_framing {
            prop_assert!(decode(&damaged, DecodeMode::Strict, chunk).is_err());
        }
    }
}
