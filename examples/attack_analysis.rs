//! Attack analysis: evaluate Rowhammer, Row-Press and the ImPress-N evasion pattern
//! against every defense, for both a memory-controller tracker (Graphene) and an
//! in-DRAM tracker (MINT), and print the maximum unmitigated charge each attack
//! achieves.
//!
//! Run with: `cargo run --release --example attack_analysis`

use impress_repro::attacks::{AttackPattern, EvasionPattern, RowPressPattern, RowhammerPattern};
use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::security::SecurityHarness;
use impress_repro::core::Alpha;
use impress_repro::dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    let rounds = 30_000u64;
    let alpha = 1.0;

    let patterns: Vec<Box<dyn AttackPattern>> = vec![
        Box::new(RowhammerPattern::new(2_000)),
        Box::new(RowPressPattern::new(2_000, timings.t_refi)),
        Box::new(RowPressPattern::maximal(2_000, &timings)),
        Box::new(EvasionPattern::new(2_000, 9_000, &timings)),
    ];
    let defenses = [
        ("No-RP", DefenseKind::NoRp),
        (
            "ImPress-N(α=1)",
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
        ("ImPress-P", DefenseKind::impress_p_default()),
    ];

    for (tracker, trh) in [
        (TrackerChoice::Graphene, 4_000u64),
        (TrackerChoice::Mint, 1_600),
    ] {
        println!("== Tracker: {} (TRH = {trh}) ==", tracker.label());
        println!("defense\tattack\tmax_charge\tmitigations\tbit_flip");
        for (label, defense) in defenses {
            for pattern in &patterns {
                let config = ProtectionConfig {
                    rowhammer_threshold: trh,
                    ..ProtectionConfig::paper_default(tracker, defense)
                };
                if config.validate().is_err() {
                    continue;
                }
                let mut harness = SecurityHarness::new(&config, alpha, &timings);
                let report = harness.run(pattern.accesses(rounds), u64::MAX);
                println!(
                    "{label}\t{}\t{:.0}\t{}\t{}",
                    pattern.name(),
                    report.max_unmitigated_charge,
                    report.mitigations,
                    report.bit_flipped()
                );
            }
        }
        println!();
    }
}
