//! Defense comparison: run one SPEC-like and one STREAM-like workload under every
//! (tracker, defense) combination and print normalized performance, storage and the
//! Table III properties side by side — the "which defense should I deploy?" view.
//!
//! Run with: `cargo run --release --example defense_comparison`

use impress_repro::core::comparison::DefenseProperties;
use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::storage::storage_for;
use impress_repro::core::Alpha;
use impress_repro::dram::DramTimings;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn main() {
    let timings = DramTimings::ddr5();
    let runner = ExperimentRunner::new().with_requests_per_core(8_000);

    let defenses = [
        ("No-RP", DefenseKind::NoRp),
        ("ExPress", DefenseKind::express_paper_baseline(&timings)),
        (
            "ImPress-N",
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
        ("ImPress-P", DefenseKind::impress_p_default()),
    ];

    println!("tracker\tdefense\tperf(mcf)\tperf(copy)\tstorage_KiB/ch\tin-DRAM-ok");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mint,
    ] {
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        // Build the valid configurations, then run them as one parallel sweep over
        // both probe workloads (the baseline runs are computed once and shared).
        let valid: Vec<(&str, DefenseKind)> = defenses
            .iter()
            .filter(|(_, defense)| {
                ProtectionConfig::paper_default(tracker, *defense)
                    .validate()
                    .is_ok()
            })
            .copied()
            .collect();
        let configs: Vec<Configuration> = valid
            .iter()
            .map(|(label, defense)| {
                Configuration::protected(
                    format!("{}+{label}", tracker.label()),
                    ProtectionConfig::paper_default(tracker, *defense),
                )
            })
            .collect();
        let sweep = runner.run_sweep(&["mcf", "copy"], &baseline, &configs);
        // Print in the original defenses[] order, slotting incompatible rows where
        // the seed printed them.
        let mut results = valid.iter().zip(sweep);
        for (label, defense) in defenses {
            if ProtectionConfig::paper_default(tracker, defense)
                .validate()
                .is_err()
            {
                println!("{}\t{label}\t-\t-\t-\tincompatible", tracker.label());
                continue;
            }
            let (_, row) = results.next().expect("one sweep row per valid defense");
            let storage = storage_for(tracker, defense);
            println!(
                "{}\t{label}\t{:.3}\t{:.3}\t{:.1}\t{}",
                tracker.label(),
                row[0].normalized_performance,
                row[1].normalized_performance,
                storage.kib_per_channel,
                defense.compatible_with_in_dram()
            );
        }
        println!();
    }

    println!("Table III properties:");
    for p in DefenseProperties::table3(&timings) {
        println!("{p:?}");
    }
}
