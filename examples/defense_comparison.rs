//! Defense comparison: run one SPEC-like and one STREAM-like workload under every
//! (tracker, defense) combination and print normalized performance, storage and the
//! Table III properties side by side — the "which defense should I deploy?" view.
//!
//! Run with: `cargo run --release --example defense_comparison`

use impress_repro::core::comparison::DefenseProperties;
use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::storage::storage_for;
use impress_repro::core::Alpha;
use impress_repro::dram::DramTimings;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn main() {
    let timings = DramTimings::ddr5();
    let mut runner = ExperimentRunner::new().with_requests_per_core(8_000);

    let defenses = [
        ("No-RP", DefenseKind::NoRp),
        ("ExPress", DefenseKind::express_paper_baseline(&timings)),
        (
            "ImPress-N",
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
        ("ImPress-P", DefenseKind::impress_p_default()),
    ];

    println!("tracker\tdefense\tperf(mcf)\tperf(copy)\tstorage_KiB/ch\tin-DRAM-ok");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mint,
    ] {
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        for (label, defense) in defenses {
            let protection = ProtectionConfig::paper_default(tracker, defense);
            if protection.validate().is_err() {
                println!("{}\t{label}\t-\t-\t-\tincompatible", tracker.label());
                continue;
            }
            let config =
                Configuration::protected(format!("{}+{label}", tracker.label()), protection);
            let spec = runner.run_normalized("mcf", &baseline, &config);
            let stream = runner.run_normalized("copy", &baseline, &config);
            let storage = storage_for(tracker, defense);
            println!(
                "{}\t{label}\t{:.3}\t{:.3}\t{:.1}\t{}",
                tracker.label(),
                spec.normalized_performance,
                stream.normalized_performance,
                storage.kib_per_channel,
                defense.compatible_with_in_dram()
            );
        }
        println!();
    }

    println!("Table III properties:");
    for p in DefenseProperties::table3(&timings) {
        println!("{p:?}");
    }
}
