//! LLC filtering: drive the shared SRRIP last-level cache with a raw access stream and
//! feed only its misses to the protected memory controller — the full-substrate path
//! (cores → LLC → controller → DRAM) rather than the pre-filtered miss streams used by
//! the figure harness.
//!
//! Run with: `cargo run --release --example llc_filtering`

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::dram::PhysicalAddress;
use impress_repro::memctrl::{ControllerConfig, MemoryController};
use impress_repro::sim::{Llc, LlcConfig, LlcOutcome};
use impress_repro::workloads::spec::spec_profile;
use impress_repro::workloads::TraceGenerator;

fn main() {
    // A raw (pre-LLC) access stream: reuse the mcf profile but interpret it as L2
    // misses, so a good fraction will hit in the 16 MB LLC.
    let profile = spec_profile("mcf").expect("known workload");
    let mut generator = TraceGenerator::new(&profile, 0, 0, 42);

    let mut llc = Llc::new(LlcConfig::baseline());
    let protection =
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default());
    let mut controller =
        MemoryController::new(ControllerConfig::baseline().with_protection(protection));

    let accesses = 400_000;
    let mut now = 0u64;
    let mut memory_reads = 0u64;
    let mut writebacks = 0u64;
    for _ in 0..accesses {
        let access = generator.next_access();
        match llc.access(access.address, access.is_write) {
            LlcOutcome::Hit => {}
            LlcOutcome::Miss { writeback } => {
                let out = controller
                    .access_physical(access.address, false, now)
                    .expect("address in range");
                now = out.completed_at;
                memory_reads += 1;
                if let Some(victim) = writeback {
                    let victim = PhysicalAddress::new(victim.as_u64() % (64 << 30));
                    now = controller
                        .access_physical(victim, true, now)
                        .expect("address in range")
                        .completed_at;
                    writebacks += 1;
                }
            }
        }
    }

    let stats = controller.stats();
    println!("accesses issued to the LLC     : {accesses}");
    println!("LLC hit rate                   : {:.2}", llc.hit_rate());
    println!("memory reads / writebacks      : {memory_reads} / {writebacks}");
    println!(
        "DRAM row-buffer hit rate       : {:.2}",
        stats.banks.row_hit_rate()
    );
    println!(
        "demand activations             : {}",
        stats.banks.activations
    );
    println!(
        "mitigative activations         : {}",
        stats.banks.mitigative_activations
    );
}
