//! Quickstart: protect a DRAM bank with Graphene + ImPress-P and check that both a
//! Rowhammer and a Row-Press attack are contained, then run a small performance
//! simulation of a STREAM workload under the same protection.
//!
//! Run with: `cargo run --release --example quickstart`

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::security::{AggressorAccess, SecurityHarness};
use impress_repro::dram::DramTimings;
use impress_repro::memctrl::ControllerConfig;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn main() {
    let timings = DramTimings::ddr5();

    // 1. Security: Graphene + ImPress-P at the paper's default threshold (TRH = 4K).
    let config =
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default());
    println!("== Security check: Graphene + ImPress-P (TRH = 4K) ==");

    // A classic Rowhammer attack: 100K minimum-length activations of row 1000.
    let mut harness = SecurityHarness::new(&config, 1.0, &timings);
    let rowhammer = (0..100_000).map(|_| AggressorAccess::hammer(1000));
    let report = harness.run(rowhammer, u64::MAX);
    println!(
        "Rowhammer: max victim charge {:.0} / {} units, bit flip: {}",
        report.max_unmitigated_charge,
        report.configured_threshold,
        report.bit_flipped()
    );

    // A Row-Press attack holding the row open for a full tREFI per activation.
    let mut harness = SecurityHarness::new(&config, 1.0, &timings);
    let rowpress = (0..20_000).map(|_| AggressorAccess::press(1000, timings.t_refi));
    let report = harness.run(rowpress, u64::MAX);
    println!(
        "Row-Press: max victim charge {:.0} / {} units, bit flip: {}",
        report.max_unmitigated_charge,
        report.configured_threshold,
        report.bit_flipped()
    );

    // The same Row-Press attack against a tracker with no Row-Press mitigation breaks.
    let no_rp = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
    let mut harness = SecurityHarness::new(&no_rp, 1.0, &timings);
    let rowpress = (0..20_000).map(|_| AggressorAccess::press(1000, timings.t_refi));
    let report = harness.run(rowpress, u64::MAX);
    println!(
        "Row-Press vs unmitigated Graphene: bit flip after only {} activations: {}",
        report.accesses,
        report.bit_flipped()
    );

    // 2. Performance: a STREAM workload under the same protection, normalized to an
    //    unprotected baseline.
    println!();
    println!("== Performance check: STREAM copy under Graphene + ImPress-P ==");
    let runner = ExperimentRunner::new().with_requests_per_core(10_000);
    let baseline = Configuration::unprotected();
    let protected = Configuration::protected("Graphene+ImPress-P", config);
    // One-cell parallel sweep: the same entry point the figure binaries use.
    let result = runner
        .run_sweep(&["copy"], &baseline, std::slice::from_ref(&protected))
        .remove(0)
        .remove(0);
    println!(
        "normalized performance: {:.3} (row-buffer hit rate {:.2})",
        result.normalized_performance,
        result.output.row_hit_rate()
    );
    let _ = ControllerConfig::baseline();
}
