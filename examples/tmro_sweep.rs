//! tMRO sweep: reproduce the core observation behind Figure 3 — limiting the row-open
//! time barely affects SPEC-like workloads but visibly slows STREAM-like workloads —
//! and show how the same limit changes the tolerated threshold (Figure 4).
//!
//! Run with: `cargo run --release --example tmro_sweep`

use impress_repro::core::rowpress_data::{relative_threshold_for_tmro, TMRO_SWEEP_NS};
use impress_repro::dram::timing::ns_to_cycles;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn main() {
    let mut runner = ExperimentRunner::new().with_requests_per_core(8_000);
    let baseline = Configuration::unprotected();

    println!("tMRO_ns\tperf(gcc)\tperf(mcf)\tperf(copy)\tperf(triad)\tT*_relative");
    for &tmro_ns in &TMRO_SWEEP_NS {
        let config = Configuration::with_tmro(format!("tMRO={tmro_ns}ns"), ns_to_cycles(tmro_ns));
        let mut row = Vec::new();
        for workload in ["gcc", "mcf", "copy", "triad"] {
            let r = runner.run_normalized(workload, &baseline, &config);
            row.push(format!("{:.3}", r.normalized_performance));
        }
        println!(
            "{tmro_ns}\t{}\t{:.3}",
            row.join("\t"),
            relative_threshold_for_tmro(tmro_ns)
        );
    }
    println!();
    println!("Lower tMRO keeps Row-Press in check (T* closer to 1.0 means less threshold");
    println!("reduction is needed) but costs STREAM performance — the trade-off ImPress avoids.");
}
