//! tMRO sweep: reproduce the core observation behind Figure 3 — limiting the row-open
//! time barely affects SPEC-like workloads but visibly slows STREAM-like workloads —
//! and show how the same limit changes the tolerated threshold (Figure 4).
//!
//! The whole sweep runs on the parallel experiment engine (`IMPRESS_THREADS` controls
//! the worker count); results are identical at any thread count.
//!
//! Run with: `cargo run --release --example tmro_sweep`

use impress_repro::core::rowpress_data::{relative_threshold_for_tmro, TMRO_SWEEP_NS};
use impress_repro::dram::timing::ns_to_cycles;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(8_000);
    let baseline = Configuration::unprotected();
    let workloads = ["gcc", "mcf", "copy", "triad"];
    let configs: Vec<Configuration> = TMRO_SWEEP_NS
        .iter()
        .map(|&ns| Configuration::with_tmro(format!("tMRO={ns}ns"), ns_to_cycles(ns)))
        .collect();

    let sweep = runner.run_sweep(&workloads, &baseline, &configs);

    println!("tMRO_ns\tperf(gcc)\tperf(mcf)\tperf(copy)\tperf(triad)\tT*_relative");
    for (&tmro_ns, results) in TMRO_SWEEP_NS.iter().zip(sweep) {
        let row: Vec<String> = results
            .iter()
            .map(|r| format!("{:.3}", r.normalized_performance))
            .collect();
        println!(
            "{tmro_ns}\t{}\t{:.3}",
            row.join("\t"),
            relative_threshold_for_tmro(tmro_ns)
        );
    }
    println!();
    println!("Lower tMRO keeps Row-Press in check (T* closer to 1.0 means less threshold");
    println!("reduction is needed) but costs STREAM performance — the trade-off ImPress avoids.");
}
