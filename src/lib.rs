//! # impress-repro
//!
//! Umbrella crate for the reproduction of *"ImPress: Securing DRAM Against
//! Data-Disturbance Errors via Implicit Row-Press Mitigation"* (MICRO 2024).
//!
//! It re-exports every sub-crate of the workspace so that examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`dram`] — DDR5 device model (timings, banks, mapping, refresh, RFM, energy).
//! * [`trackers`] — Rowhammer trackers (Graphene, PARA, Mithril, MINT, PRAC) with EACT support.
//! * [`core`] — the ImPress contribution: charge-loss model, ExPress/ImPress-N/ImPress-P,
//!   mitigation engine, security harness, threshold/storage analyses.
//! * [`attacks`] — Rowhammer/Row-Press/combined attack patterns and slowdown models.
//! * [`workloads`] — synthetic SPEC-like and STREAM-like trace generators.
//! * [`memctrl`] — the DDR5 memory controller (FR-FCFS, page policies, tMRO, mitigations).
//! * [`sim`] — the multi-core trace-driven system simulator and performance metrics.
//! * [`exec`] — the scoped thread pool behind the parallel experiment sweeps.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench/` for the
//! harnesses that regenerate every table and figure of the paper.

pub use impress_attacks as attacks;
pub use impress_core as core;
pub use impress_dram as dram;
pub use impress_exec as exec;
pub use impress_memctrl as memctrl;
pub use impress_sim as sim;
pub use impress_trackers as trackers;
pub use impress_workloads as workloads;
