//! Security-harness A/B gate for the stream-summary eviction engine.
//!
//! The tracker-level contract (same mitigations while victim choices are
//! unambiguous, Misra-Gries no-undercount bound always) is property-tested in
//! `impress-trackers`. This suite closes the loop end-to-end: replay adversarial
//! churn and randomized streams through the full defense stack
//! ([`SecurityHarness`] with the CLM as ground truth) under both
//! `IMPRESS_EVICTION` engines and require that the **maximum unmitigated
//! disturbance under the summary engine never exceeds the seed (scan)
//! engine's** — i.e. relaxing bit-identical victim selection to observational
//! equivalence gives up nothing measurable on the streams that maximize
//! evictions.

use impress_repro::attacks::{
    AttackPattern, RotatingAggressorPattern, RowhammerPattern, ThresholdStraddlingPattern,
};
use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::security::{AggressorAccess, SecurityHarness};
use impress_repro::core::{Alpha, EvictionEngine};
use impress_repro::dram::DramTimings;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configurations whose counter trackers have an eviction path to exercise.
fn counter_configs() -> Vec<(&'static str, ProtectionConfig)> {
    vec![
        (
            "graphene+no-rp",
            ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp),
        ),
        (
            "graphene+impress-p",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        ),
        (
            "mithril+impress-p",
            ProtectionConfig::paper_default(
                TrackerChoice::Mithril,
                DefenseKind::impress_p_default(),
            ),
        ),
        (
            "mithril+impress-n",
            ProtectionConfig::paper_default(
                TrackerChoice::Mithril,
                DefenseKind::ImpressN {
                    alpha: Alpha::Conservative,
                },
            ),
        ),
    ]
}

/// Replays `accesses` through a scan/summary harness pair and asserts the gate.
fn assert_summary_no_worse(
    label: &str,
    config: &ProtectionConfig,
    accesses: &[AggressorAccess],
    expect_contained: bool,
) {
    let timings = DramTimings::ddr5();
    let (mut scan, mut summary) = SecurityHarness::eviction_engine_pair(config, 1.0, &timings);
    let scan_report = scan.run(accesses.iter().copied(), u64::MAX);
    let summary_report = summary.run(accesses.iter().copied(), u64::MAX);
    assert!(
        summary_report.max_unmitigated_charge <= scan_report.max_unmitigated_charge + 1e-9,
        "{label}: summary engine leaked more ({} > {})",
        summary_report.max_unmitigated_charge,
        scan_report.max_unmitigated_charge,
    );
    if expect_contained {
        assert!(
            !scan_report.bit_flipped() && !summary_report.bit_flipped(),
            "{label}: churn stream should stay far below the threshold \
             (scan {}, summary {})",
            scan_report.max_unmitigated_charge,
            summary_report.max_unmitigated_charge,
        );
    }
}

#[test]
fn rotating_aggressor_churn_summary_no_worse_than_scan() {
    // 1024 rows, stride 6 (> 2x blast radius): more distinct rows than any
    // counter table at TRH = 4K, so after warm-up nearly every record misses.
    let pattern = RotatingAggressorPattern::new(2_000, 1_024, 6);
    let accesses = pattern.accesses(40_000);
    for (label, config) in counter_configs() {
        assert_summary_no_worse(label, &config, &accesses, true);
    }
}

#[test]
fn rotating_rowpress_churn_summary_no_worse_than_scan() {
    // The same rotation with each row held open ~4 tRC: fractional EACT weights
    // create non-uniform counts (fewer ties, deeper bucket lists).
    let timings = DramTimings::ddr5();
    let pattern = RotatingAggressorPattern::new(2_000, 768, 6).with_press(4 * timings.t_rc + 17);
    let accesses = pattern.accesses(30_000);
    for (label, config) in counter_configs() {
        assert_summary_no_worse(label, &config, &accesses, true);
    }
}

#[test]
fn threshold_straddling_churn_summary_no_worse_than_scan() {
    // Aggressor bursts sized to climb toward Graphene's internal threshold
    // (1333 at TRH = 4K) over a few rotations, with eviction-forcing churn
    // between bursts.
    let pattern = ThresholdStraddlingPattern::new(10_000, 4, 160, 48);
    let accesses = pattern.accesses(40_000);
    for (label, config) in counter_configs() {
        assert_summary_no_worse(label, &config, &accesses, false);
    }
}

#[test]
fn randomized_churn_streams_summary_no_worse_than_scan() {
    // Security is a worst-case-over-streams property: the attacker picks the
    // stream, not the tie-break. On any *single* random stream the engines'
    // tied-victim choices are symmetric noise (either may come out a charge
    // unit or two ahead, far below the threshold), so the gate compares each
    // engine's worst disturbance over the whole randomized stream set — the
    // quantity the threshold argument actually bounds. Every stream is still
    // individually required to stay contained under both engines.
    let timings = DramTimings::ddr5();
    let streams: Vec<Vec<AggressorAccess>> = [
        0xA11CE5u64,
        0xB0B057,
        0xC0FFEE,
        0x12345,
        0xDEAD1,
        0xFEED2,
        0x99993,
    ]
    .iter()
    .map(|&seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..25_000)
            .map(|_| {
                let row = rng.gen_range(0..4_096u32) + 100;
                if rng.gen_range(0..4u32) == 0 {
                    AggressorAccess::press(row, rng.gen_range(1..8u64) * timings.t_rc + 13)
                } else {
                    AggressorAccess::hammer(row)
                }
            })
            .collect()
    })
    .collect();
    for (label, config) in counter_configs() {
        let mut worst_scan = 0.0f64;
        let mut worst_summary = 0.0f64;
        for accesses in &streams {
            let (mut scan, mut summary) =
                SecurityHarness::eviction_engine_pair(&config, 1.0, &timings);
            let a = scan.run(accesses.iter().copied(), u64::MAX);
            let b = summary.run(accesses.iter().copied(), u64::MAX);
            assert!(
                !a.bit_flipped() && !b.bit_flipped(),
                "{label}: randomized churn must stay contained under both engines"
            );
            worst_scan = worst_scan.max(a.max_unmitigated_charge);
            worst_summary = worst_summary.max(b.max_unmitigated_charge);
        }
        assert!(
            worst_summary <= worst_scan + 1e-9,
            "{label}: summary engine's worst-case disturbance over the randomized \
             stream set exceeds the scan engine's ({worst_summary} > {worst_scan})"
        );
    }
}

#[test]
fn single_aggressor_streams_are_bitwise_identical_across_engines() {
    // With no evictions the engines are in exact lockstep, so the whole report
    // (charge, mitigations, durations) matches bit for bit — the conditional
    // half of the observational-equivalence contract at system level.
    let timings = DramTimings::ddr5();
    let pattern = RowhammerPattern::new(1_000);
    let accesses = pattern.accesses(30_000);
    for (label, config) in counter_configs() {
        let (mut scan, mut summary) = SecurityHarness::eviction_engine_pair(&config, 1.0, &timings);
        let a = scan.run(accesses.iter().copied(), u64::MAX);
        let b = summary.run(accesses.iter().copied(), u64::MAX);
        assert_eq!(a, b, "{label}");
        assert_eq!(
            a.max_unmitigated_charge.to_bits(),
            b.max_unmitigated_charge.to_bits(),
            "{label}"
        );
    }
}

#[test]
fn env_default_and_pinning_are_wired() {
    // The process-wide default follows IMPRESS_EVICTION (summary unless the
    // variable selects scan — CI runs this suite under both values), and
    // pinning a configuration overrides the environment in both directions.
    let expected = match std::env::var("IMPRESS_EVICTION") {
        Ok(v) if v.trim().eq_ignore_ascii_case("scan") => EvictionEngine::Scan,
        _ => EvictionEngine::Summary,
    };
    assert_eq!(EvictionEngine::from_env(), expected);
    let cfg = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
    assert_eq!(cfg.eviction_engine(), expected);
    for pinned in [EvictionEngine::Scan, EvictionEngine::Summary] {
        assert_eq!(
            cfg.clone().with_eviction_engine(pinned).eviction_engine(),
            pinned
        );
    }
}
