//! End-to-end determinism gate for the parallel sweep engine: a sweep executed on
//! many workers must be bit-for-bit identical to the same sweep executed serially,
//! across protected and unprotected configurations and both workload classes.

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::dram::timing::ns_to_cycles;
use impress_repro::sim::{Configuration, ExperimentRunner};

fn configurations() -> Vec<Configuration> {
    vec![
        Configuration::with_tmro("tMRO=66ns".to_string(), ns_to_cycles(66)),
        Configuration::protected(
            "Graphene+ImPress-P",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        ),
        Configuration::protected(
            "Mithril+ImPress-P",
            ProtectionConfig::paper_default(
                TrackerChoice::Mithril,
                DefenseKind::impress_p_default(),
            ),
        ),
    ]
}

#[test]
fn parallel_sweep_reproduces_serial_sweep_exactly() {
    let runner = ExperimentRunner::new().with_requests_per_core(2_000);
    let baseline = Configuration::unprotected();
    let workloads = ["gcc", "copy", "omnetpp", "triad"];
    let configs = configurations();

    let serial = runner.run_sweep_with_threads(1, &workloads, &baseline, &configs);
    for threads in [2, 4, 8] {
        let parallel = runner.run_sweep_with_threads(threads, &workloads, &baseline, &configs);
        assert_eq!(serial.len(), parallel.len());
        for (sc, pc) in serial.iter().zip(&parallel) {
            for (s, p) in sc.iter().zip(pc) {
                assert_eq!(
                    s.workload, p.workload,
                    "ordering differs at {threads} threads"
                );
                assert_eq!(s.configuration, p.configuration);
                assert_eq!(
                    s.normalized_performance.to_bits(),
                    p.normalized_performance.to_bits(),
                    "{}/{} differs at {threads} threads",
                    s.configuration,
                    s.workload
                );
                assert_eq!(
                    s.output.performance.elapsed_cycles,
                    p.output.performance.elapsed_cycles
                );
                assert_eq!(
                    s.output.performance.per_core_ipc,
                    p.output.performance.per_core_ipc
                );
                assert_eq!(s.output.memory, p.output.memory);
                assert_eq!(
                    s.output.energy.total_nj().to_bits(),
                    p.output.energy.total_nj().to_bits()
                );
            }
        }
    }
}

#[test]
fn repeated_parallel_sweeps_are_identical() {
    // Run-to-run determinism at a fixed thread count (no hidden global state).
    let runner = ExperimentRunner::new().with_requests_per_core(1_000);
    let baseline = Configuration::unprotected();
    let workloads = ["mcf", "add"];
    let configs = configurations();
    let a = runner.run_sweep_with_threads(3, &workloads, &baseline, &configs);
    let b = runner.run_sweep_with_threads(3, &workloads, &baseline, &configs);
    for (ca, cb) in a.iter().zip(&b) {
        for (ra, rb) in ca.iter().zip(cb) {
            assert_eq!(
                ra.normalized_performance.to_bits(),
                rb.normalized_performance.to_bits()
            );
        }
    }
}
