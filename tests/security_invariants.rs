//! Cross-crate integration tests: the paper's security claims, exercised end-to-end
//! through the attack generators, the defense engines and the trackers.

use impress_repro::attacks::{AttackPattern, CombinedPattern, RowPressPattern, RowhammerPattern};
use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::security::SecurityHarness;
use impress_repro::core::Alpha;
use impress_repro::dram::DramTimings;

fn run_attack(
    tracker: TrackerChoice,
    defense: DefenseKind,
    trh: u64,
    pattern: &dyn AttackPattern,
    rounds: u64,
) -> impress_repro::core::SecurityReport {
    let timings = DramTimings::ddr5();
    let config = ProtectionConfig {
        rowhammer_threshold: trh,
        ..ProtectionConfig::paper_default(tracker, defense)
    };
    let mut harness = SecurityHarness::new(&config, 1.0, &timings);
    harness.run(pattern.accesses(rounds), u64::MAX)
}

#[test]
fn rowhammer_is_contained_by_every_tracker_without_rp_mitigation() {
    let pattern = RowhammerPattern::new(1_000);
    for (tracker, trh) in [
        (TrackerChoice::Graphene, 4_000),
        (TrackerChoice::Para, 4_000),
        (TrackerChoice::Mithril, 4_000),
        (TrackerChoice::Mint, 1_600),
        (TrackerChoice::Prac, 4_000),
    ] {
        let report = run_attack(tracker, DefenseKind::NoRp, trh, &pattern, 60_000);
        assert!(
            !report.bit_flipped(),
            "{tracker:?} should contain plain Rowhammer (charge {})",
            report.max_unmitigated_charge
        );
    }
}

#[test]
fn rowpress_breaks_unmitigated_trackers() {
    // §II-D: Row-Press causes bit flips with far fewer activations than TRH when the
    // tracker is unaware of the row-open time. (Memory-controller trackers are checked
    // here; the in-DRAM trackers in this model also get mitigation opportunities under
    // REF, which partially masks single-aggressor Row-Press — see EXPERIMENTS.md.)
    let timings = DramTimings::ddr5();
    let pattern = RowPressPattern::new(1_000, timings.t_refi);
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let report = run_attack(tracker, DefenseKind::NoRp, 4_000, &pattern, 2_000);
        assert!(
            report.bit_flipped(),
            "Row-Press should defeat {tracker:?} without RP mitigation"
        );
    }
}

#[test]
fn impress_p_restores_protection_for_all_trackers() {
    let timings = DramTimings::ddr5();
    let patterns: Vec<Box<dyn AttackPattern>> = vec![
        Box::new(RowhammerPattern::new(1_000)),
        Box::new(RowPressPattern::new(1_000, timings.t_refi)),
        Box::new(RowPressPattern::maximal(1_000, &timings)),
        Box::new(CombinedPattern::new(1_000, 16, &timings)),
    ];
    for (tracker, trh) in [
        (TrackerChoice::Graphene, 4_000),
        (TrackerChoice::Para, 4_000),
        (TrackerChoice::Mithril, 4_000),
        (TrackerChoice::Mint, 1_600),
    ] {
        for pattern in &patterns {
            let report = run_attack(
                tracker,
                DefenseKind::impress_p_default(),
                trh,
                pattern.as_ref(),
                30_000,
            );
            assert!(
                !report.bit_flipped(),
                "{tracker:?} + ImPress-P should contain {} (charge {})",
                pattern.name(),
                report.max_unmitigated_charge
            );
        }
    }
}

#[test]
fn impress_n_with_alpha_one_contains_rowpress_for_in_dram_trackers() {
    let timings = DramTimings::ddr5();
    let pattern = RowPressPattern::maximal(1_000, &timings);
    for (tracker, trh) in [
        (TrackerChoice::Mithril, 4_000),
        (TrackerChoice::Mint, 1_600),
    ] {
        let report = run_attack(
            tracker,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
            trh,
            &pattern,
            30_000,
        );
        assert!(
            !report.bit_flipped(),
            "{tracker:?} + ImPress-N should contain maximal Row-Press (charge {})",
            report.max_unmitigated_charge
        );
    }
}

#[test]
fn express_cannot_be_deployed_with_in_dram_trackers() {
    let timings = DramTimings::ddr5();
    for tracker in [
        TrackerChoice::Mithril,
        TrackerChoice::Mint,
        TrackerChoice::Prac,
    ] {
        let config =
            ProtectionConfig::paper_default(tracker, DefenseKind::express_paper_baseline(&timings));
        assert!(config.validate().is_err());
    }
}

#[test]
fn impress_p_never_tolerates_less_than_no_rp_under_rowhammer() {
    // ImPress-P's accounting of a pure Rowhammer pattern is identical to No-RP's, so
    // the maximum unmitigated charge must match.
    let pattern = RowhammerPattern::new(777);
    let no_rp = run_attack(
        TrackerChoice::Graphene,
        DefenseKind::NoRp,
        4_000,
        &pattern,
        40_000,
    );
    let impress_p = run_attack(
        TrackerChoice::Graphene,
        DefenseKind::impress_p_default(),
        4_000,
        &pattern,
        40_000,
    );
    assert_eq!(
        no_rp.max_unmitigated_charge, impress_p.max_unmitigated_charge,
        "ImPress-P must not change pure-Rowhammer accounting"
    );
}
