//! End-to-end determinism gate for the epoch-phased sharded run loop, mirroring
//! `tests/parallel_determinism.rs` (which gates the *sweep-level* axis).
//!
//! Three properties are pinned:
//!
//! 1. **Serial fidelity** — `System::run` (the epoch-phased loop) is bit-for-bit
//!    identical to the pre-shard serial loop: one `while` over the global
//!    minimum-issue-time core, one `MemoryController::access_physical` call per
//!    request. The reference below is a literal transcription of that loop built
//!    from the same public pieces (`CoreModel`, `WorkloadMix`, `MemoryController`).
//! 2. **Thread-count invariance** — `System::run_with_threads(n)` produces identical
//!    output for every `n`, including configurations where shards carry
//!    defense/tracker state and the system has more channels than the baseline.
//! 3. **Horizon-mode invariance** — the adaptive (dependency-bounded) issue window
//!    and the fixed (minimum-access-latency) window replay the same serial issue
//!    schedule, so `run_with_horizon` output is identical across both modes and
//!    every thread count — pinned both on named configurations and on a seeded
//!    randomized sweep over workload mixes × channel counts × protection ×
//!    thread counts.

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::dram::energy::EnergyModel;
use impress_repro::dram::organization::DramOrganization;
use impress_repro::dram::stats::ChannelStats;
use impress_repro::memctrl::{ControllerConfig, MemoryController};
use impress_repro::sim::{
    Configuration, CoreModel, ExperimentRunner, HorizonMode, System, SystemConfig,
};
use impress_repro::workloads::WorkloadMix;

/// What a run observably produces; everything compared bit-for-bit.
#[derive(Debug, PartialEq)]
struct Observed {
    elapsed_cycles: u64,
    per_core_ipc_bits: Vec<u64>,
    memory: ChannelStats,
    energy_bits: u64,
}

impl Observed {
    fn of(out: &impress_repro::sim::RunOutput) -> Self {
        Self {
            elapsed_cycles: out.performance.elapsed_cycles,
            per_core_ipc_bits: out
                .performance
                .per_core_ipc
                .iter()
                .map(|v| v.to_bits())
                .collect(),
            memory: out.memory,
            energy_bits: out.energy.total_nj().to_bits(),
        }
    }
}

/// A literal transcription of the pre-shard serial `System::run` loop (PR 2 state):
/// the reference the epoch-phased loop must reproduce exactly.
fn reference_serial_run(config: SystemConfig, mut mix: WorkloadMix) -> Observed {
    assert_eq!(config.cores, mix.cores());
    let mut cores: Vec<CoreModel> = (0..config.cores)
        .map(|i| {
            let instructions_per_miss = mix.instructions_per_miss(i);
            let mpki = 1000.0 / instructions_per_miss;
            let think_gap = instructions_per_miss / config.retire_per_dram_cycle;
            CoreModel::new(i, think_gap, config.mlp_for_mpki(mpki))
        })
        .collect();
    let mut controller = MemoryController::new(config.controller.clone());

    let quota = config.requests_per_core;
    let mut remaining: u64 = quota * cores.len() as u64;
    while remaining > 0 {
        let mut best: Option<(usize, u64)> = None;
        for core in &cores {
            if core.issued() >= quota {
                continue;
            }
            let t = core.next_issue_time();
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((core.id(), t));
            }
        }
        let (core_id, now) = best.expect("remaining > 0 implies an eligible core");
        let access = mix.next_access(core_id);
        let outcome = controller
            .access_physical(access.address, access.is_write, now)
            .expect("workload addresses are within the configured capacity");
        cores[core_id].on_issue(now, outcome.completed_at);
        remaining -= 1;
    }

    let elapsed = cores.iter().map(CoreModel::finish_time).max().unwrap_or(0);
    let per_core_ipc_bits = cores
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let instructions = core.issued() as f64 * mix.instructions_per_miss(i);
            let cycles = core.finish_time().max(1) as f64;
            (instructions / cycles).to_bits()
        })
        .collect();
    let memory = controller.stats();
    let energy = EnergyModel::ddr5().energy(
        &memory.banks,
        elapsed,
        controller.total_banks(),
        &config.controller.timings,
    );
    Observed {
        elapsed_cycles: elapsed,
        per_core_ipc_bits,
        memory,
        energy_bits: energy.total_nj().to_bits(),
    }
}

fn controller_configs() -> Vec<(&'static str, ControllerConfig)> {
    let four_channel = DramOrganization {
        channels: 4,
        ..DramOrganization::baseline()
    };
    vec![
        ("unprotected", ControllerConfig::baseline()),
        (
            "graphene+impress-p",
            ControllerConfig::baseline().with_protection(ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            )),
        ),
        (
            "mithril+impress-p/4ch",
            ControllerConfig {
                organization: four_channel,
                ..ControllerConfig::baseline()
            }
            .with_protection(ProtectionConfig::paper_default(
                TrackerChoice::Mithril,
                DefenseKind::impress_p_default(),
            )),
        ),
    ]
}

fn system_config(controller: ControllerConfig, requests: u64) -> SystemConfig {
    SystemConfig {
        requests_per_core: requests,
        controller,
        ..SystemConfig::baseline()
    }
}

#[test]
fn epoch_phased_run_reproduces_the_serial_reference_exactly() {
    for (label, controller) in controller_configs() {
        for workload in ["gcc", "copy"] {
            let mix = || WorkloadMix::by_name(workload, 11).unwrap();
            let cfg = || system_config(controller.clone(), 1_500);
            let reference = reference_serial_run(cfg(), mix());
            for mode in [HorizonMode::Fixed, HorizonMode::Adaptive] {
                for threads in [1usize, 2, 4, 8] {
                    let out = System::new(cfg(), mix()).run_with_horizon(threads, mode);
                    assert_eq!(
                        Observed::of(&out),
                        reference,
                        "{label}/{workload} diverged from the serial reference at \
                         {threads} shard threads in {mode:?} horizon mode"
                    );
                }
            }
        }
    }
}

/// Seeded randomized sweep of the third property: for random (workload, channel
/// count, protection, request quota) draws, the adaptive-horizon loop, the
/// fixed-window loop and the literal serial transcription agree bit-for-bit at
/// 1/2/4/8 shard threads. The vendored `proptest` stand-in pins each property at
/// 256 cases — far too many full-system runs — so this drives the same
/// generate-and-check shape from an explicit deterministic RNG.
#[test]
fn random_mixes_agree_across_serial_fixed_and_adaptive_horizons() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let workloads = ["gcc", "mcf", "copy", "add_triad", "bwaves", "scale"];
    let trackers = [
        None,
        Some(TrackerChoice::Graphene),
        Some(TrackerChoice::Para),
        Some(TrackerChoice::Mithril),
    ];
    let mut rng = SmallRng::seed_from_u64(0x1A7E_5EED_0004);
    for case in 0..16 {
        let workload = workloads[rng.gen_range(0..workloads.len())];
        let channels = [1u8, 2, 4][rng.gen_range(0..3usize)];
        let tracker = trackers[rng.gen_range(0..trackers.len())];
        let requests = rng.gen_range(300..900u64);
        let seed = rng.gen_range(0..u64::MAX);

        let mut controller = ControllerConfig {
            organization: DramOrganization {
                channels,
                ..DramOrganization::baseline()
            },
            ..ControllerConfig::baseline()
        };
        if let Some(tracker) = tracker {
            controller = controller.with_protection(ProtectionConfig::paper_default(
                tracker,
                DefenseKind::impress_p_default(),
            ));
        }
        let label = format!(
            "case {case}: {workload} x{channels}ch tracker={tracker:?} \
             requests={requests} seed={seed}"
        );

        let mix = || WorkloadMix::by_name(workload, seed).unwrap();
        let cfg = || system_config(controller.clone(), requests);
        let reference = reference_serial_run(cfg(), mix());
        for mode in [HorizonMode::Fixed, HorizonMode::Adaptive] {
            for threads in [1usize, 2, 4, 8] {
                let out = System::new(cfg(), mix()).run_with_horizon(threads, mode);
                assert_eq!(
                    Observed::of(&out),
                    reference,
                    "{label} diverged at {threads} threads in {mode:?} mode"
                );
            }
        }
    }
}

#[test]
fn run_sharded_honors_impress_threads_and_stays_identical() {
    // Whatever IMPRESS_THREADS resolves to on this host, the default sharded entry
    // point must agree with the inline serial path.
    let controller = ControllerConfig::baseline().with_protection(ProtectionConfig::paper_default(
        TrackerChoice::Para,
        DefenseKind::impress_p_default(),
    ));
    let mix = || WorkloadMix::by_name("add_triad", 3).unwrap();
    let cfg = || system_config(controller.clone(), 1_200);
    let serial = System::new(cfg(), mix()).run_with_threads(1);
    let sharded = System::new(cfg(), mix()).run_sharded();
    assert_eq!(Observed::of(&serial), Observed::of(&sharded));
}

#[test]
fn sweep_results_are_invariant_to_shard_threads() {
    // The two parallelism axes compose: a sweep with per-run shard execution enabled
    // is bit-identical to the plain sweep.
    let baseline = Configuration::unprotected();
    let configs = vec![Configuration::protected(
        "Graphene+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default()),
    )];
    let workloads = ["mcf", "triad"];

    let plain = ExperimentRunner::new()
        .with_requests_per_core(1_000)
        .run_sweep_with_threads(2, &workloads, &baseline, &configs);
    let sharded = ExperimentRunner::new()
        .with_requests_per_core(1_000)
        .with_shard_threads(4)
        .run_sweep_with_threads(2, &workloads, &baseline, &configs);

    for (pc, sc) in plain.iter().zip(&sharded) {
        for (p, s) in pc.iter().zip(sc) {
            assert_eq!(p.workload, s.workload);
            assert_eq!(
                p.normalized_performance.to_bits(),
                s.normalized_performance.to_bits(),
                "{}/{} changed under shard threads",
                p.configuration,
                p.workload
            );
            assert_eq!(p.output.memory, s.output.memory);
            assert_eq!(
                p.output.performance.elapsed_cycles,
                s.output.performance.elapsed_cycles
            );
        }
    }
}
