//! Cross-crate integration tests: end-to-end performance simulations combining the
//! workload generators, the system model, the memory controller and the defenses.

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::Alpha;
use impress_repro::sim::{Configuration, ExperimentRunner};
use impress_repro::workloads::WorkloadMix;

const REQUESTS: u64 = 2_500;

#[test]
fn all_twenty_paper_workloads_run_under_impress_p() {
    let runner = ExperimentRunner::new().with_requests_per_core(500);
    let config = Configuration::protected(
        "Graphene+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default()),
    );
    for workload in WorkloadMix::paper_workload_names() {
        let out = runner.run_raw(workload, &config);
        assert_eq!(out.memory.requests, 8 * 500, "workload {workload}");
        assert!(out.performance.elapsed_cycles > 0);
    }
}

#[test]
fn impress_p_is_faster_than_express_for_stream() {
    // The paper's headline performance claim (Figure 13): ImPress-P removes the
    // row-buffer-locality penalty that ExPress imposes on streaming workloads.
    let mut runner = ExperimentRunner::new().with_requests_per_core(REQUESTS);
    let baseline = Configuration::protected(
        "Graphene+No-RP",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp),
    );
    let timings = impress_repro::dram::DramTimings::ddr5();
    let express = Configuration::protected(
        "Graphene+ExPress",
        ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::express_paper_baseline(&timings),
        ),
    );
    let impress_p = Configuration::protected(
        "Graphene+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default()),
    );
    let express_perf = runner
        .run_normalized("copy", &baseline, &express)
        .normalized_performance;
    let impress_perf = runner
        .run_normalized("copy", &baseline, &impress_p)
        .normalized_performance;
    assert!(
        impress_perf > express_perf,
        "ImPress-P ({impress_perf}) should outperform ExPress ({express_perf}) on STREAM"
    );
}

#[test]
fn graphene_impress_p_overhead_is_small() {
    let mut runner = ExperimentRunner::new().with_requests_per_core(REQUESTS);
    let baseline = Configuration::protected(
        "Graphene+No-RP",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp),
    );
    let impress_p = Configuration::protected(
        "Graphene+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default()),
    );
    for workload in ["mcf", "copy"] {
        let r = runner.run_normalized(workload, &baseline, &impress_p);
        assert!(
            r.normalized_performance > 0.95,
            "{workload}: Graphene+ImPress-P normalized perf = {}",
            r.normalized_performance
        );
    }
}

#[test]
fn protected_runs_report_mitigative_activations_for_para() {
    let runner = ExperimentRunner::new().with_requests_per_core(REQUESTS);
    let para = Configuration::protected(
        "PARA+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default()),
    );
    let out = runner.run_raw("mcf", &para);
    assert!(out.memory.banks.mitigative_activations > 0);
    // Mitigations also show up as energy: the breakdown must include them.
    assert!(out.energy.mitigative_act_nj > 0.0);
}

#[test]
fn impress_n_costs_more_than_impress_p_for_para() {
    // ImPress-N halves PARA's sampling period (alpha = 1) and therefore mitigates more
    // often than ImPress-P on the same traffic.
    let runner = ExperimentRunner::new().with_requests_per_core(REQUESTS);
    let impress_n = Configuration::protected(
        "PARA+ImPress-N",
        ProtectionConfig::paper_default(
            TrackerChoice::Para,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
    );
    let impress_p = Configuration::protected(
        "PARA+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default()),
    );
    let n = runner.run_raw("copy", &impress_n);
    let p = runner.run_raw("copy", &impress_p);
    assert!(
        n.memory.banks.mitigative_activations > p.memory.banks.mitigative_activations,
        "ImPress-N ({}) should mitigate more than ImPress-P ({})",
        n.memory.banks.mitigative_activations,
        p.memory.banks.mitigative_activations
    );
}

#[test]
fn runs_with_same_seed_are_reproducible() {
    let runner = ExperimentRunner::new().with_requests_per_core(1_000);
    let cfg = Configuration::unprotected();
    let a = runner.run_raw("omnetpp", &cfg);
    let b = runner.run_raw("omnetpp", &cfg);
    assert_eq!(a.performance.elapsed_cycles, b.performance.elapsed_cycles);
    assert_eq!(a.memory.banks.activations, b.memory.banks.activations);
    assert_eq!(a.memory.banks.row_hits, b.memory.banks.row_hits);
}
