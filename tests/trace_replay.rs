//! End-to-end gate for the PR 6 trace frontend: a recorded physical-address
//! stream, pushed through the binary codec and replayed by [`TraceRunner`],
//! must reproduce the in-process sharded run bit for bit at every thread count.
//!
//! Three properties are pinned:
//!
//! 1. **Codec fidelity** — writing a recorded stream through [`TraceWriter`]
//!    and reading it back through [`TraceReader`] returns the same records and
//!    metadata, bit-identical, regardless of the reader's chunk size.
//! 2. **Replay fidelity** — the closed-loop replay of the recording equals the
//!    in-process `System::run` of the same seeded workload under the same
//!    protected configuration: elapsed cycles, per-core IPC (to the bit),
//!    memory-system stats and energy all match, at 1, 2 and 4 shard threads.
//! 3. **Verdict stability** — the canonical verdict JSON derived from the
//!    replay equals the one derived from the in-process run, so the CI smoke
//!    job can gate on a plain `diff`.

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::sim::{Configuration, System, SystemConfig, TraceRunner, VerdictReport};
use impress_repro::workloads::codec::{TraceMeta, TraceReader, TraceRecord, TraceWriter};
use impress_repro::workloads::source::{AccessSource, SliceSource};
use impress_repro::workloads::WorkloadMix;

const SEED: u64 = 0x1A7E_2024;
const REQUESTS_PER_CORE: u64 = 600;

/// Records `per_core` accesses per core of a seeded workload, round-robin.
///
/// Per-core generator streams are independent of interleaving, so this is
/// exactly the stream an in-process run with the same seed would issue.
fn record(workload: &str, per_core: u64) -> (TraceMeta, Vec<TraceRecord>) {
    let mut mix = WorkloadMix::by_name(workload, SEED).expect("known workload");
    let cores = AccessSource::cores(&mix);
    let meta = TraceMeta {
        name: workload.to_string(),
        cores: cores as u8,
        has_gaps: false,
        instructions_per_miss: (0..cores)
            .map(|c| AccessSource::instructions_per_miss(&mix, c))
            .collect(),
    };
    let mut records = Vec::new();
    for _ in 0..per_core {
        for core in 0..cores {
            records.push(TraceRecord::from_access(
                AccessSource::next_access(&mut mix, core),
                0,
            ));
        }
    }
    (meta, records)
}

fn protected_configuration() -> Configuration {
    Configuration::protected(
        "Graphene+ImPress-P",
        ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::impress_p_default()),
    )
}

fn reference_run(workload: &str, configuration: &Configuration) -> impress_repro::sim::RunOutput {
    let mix = WorkloadMix::by_name(workload, SEED).expect("known workload");
    let config = SystemConfig {
        requests_per_core: REQUESTS_PER_CORE,
        ..SystemConfig::baseline()
    }
    .with_controller(configuration.controller_config());
    System::new(config, mix).run()
}

fn assert_runs_identical(a: &impress_repro::sim::RunOutput, b: &impress_repro::sim::RunOutput) {
    assert_eq!(a.performance.elapsed_cycles, b.performance.elapsed_cycles);
    assert_eq!(
        a.performance.per_core_ipc.len(),
        b.performance.per_core_ipc.len()
    );
    for (x, y) in a
        .performance
        .per_core_ipc
        .iter()
        .zip(&b.performance.per_core_ipc)
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.energy.total_nj().to_bits(), b.energy.total_nj().to_bits());
}

#[test]
fn codec_round_trips_a_recorded_stream_at_any_chunk_size() {
    let (meta, records) = record("mcf", 200);
    let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
    for &r in &records {
        writer.push(r).unwrap();
    }
    let bytes = writer.finish().unwrap();

    // Chunk sizes straddle every structure boundary: single-byte delivery,
    // a prime, and one larger than the whole trace.
    for chunk in [1usize, 997, bytes.len() + 1] {
        let mut reader = TraceReader::new(SliceSource::with_chunk_size(&bytes, chunk)).unwrap();
        assert_eq!(reader.meta(), &meta);
        let decoded = reader.read_all().unwrap();
        assert_eq!(decoded, records);
    }
}

#[test]
fn replay_matches_the_in_process_run_at_every_thread_count() {
    let workload = "mcf";
    let configuration = protected_configuration();
    let (meta, records) = record(workload, REQUESTS_PER_CORE);

    // Round-trip the recording through the codec first: the replay below must
    // consume exactly what a trace file would contain.
    let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
    for &r in &records {
        writer.push(r).unwrap();
    }
    let bytes = writer.finish().unwrap();
    let mut reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
    let meta = reader.meta().clone();
    let records = reader.read_all().unwrap();

    let reference = reference_run(workload, &configuration);
    let reference_verdict = VerdictReport::from_run(&reference, &configuration).to_json();
    for shard_threads in [1usize, 2, 4] {
        let output = TraceRunner::new().with_shard_threads(shard_threads).replay(
            &meta,
            &records,
            &configuration,
        );
        assert_runs_identical(&reference, &output);
        assert_eq!(
            VerdictReport::from_run(&output, &configuration).to_json(),
            reference_verdict,
            "verdict diverged at {shard_threads} shard threads"
        );
    }
}

#[test]
fn unprotected_replay_also_reproduces_its_run() {
    let configuration = Configuration::unprotected();
    let (meta, records) = record("copy", REQUESTS_PER_CORE);
    let reference = reference_run("copy", &configuration);
    let output = TraceRunner::new()
        .with_shard_threads(2)
        .replay(&meta, &records, &configuration);
    assert_runs_identical(&reference, &output);
    let verdict = VerdictReport::from_run(&output, &configuration);
    assert_eq!(verdict.verdict, "unprotected");
}
