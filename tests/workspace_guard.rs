//! Workspace-level guard tests.
//!
//! These assertions pin down cross-crate contracts that future refactors must
//! preserve: the paper's 20-workload set exposed by `impress_workloads`, and the
//! ability to construct every defense × tracker combination that
//! `impress_core::config` advertises.

use impress_repro::core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_repro::core::Alpha;
use impress_repro::dram::DramTimings;
use impress_repro::sim::{Configuration, ExperimentRunner};
use impress_repro::workloads::WorkloadMix;

/// The 20 workloads of §III-A in the paper's figure order: ten SPEC2017 traces
/// followed by the four STREAM kernels and six STREAM mixes.
const PAPER_WORKLOADS: [&str; 20] = [
    "fotonik3d",
    "mcf",
    "gcc",
    "omnetpp",
    "bwaves",
    "roms",
    "cactuBSSN",
    "wrf",
    "pop2",
    "xalancbmk",
    "add",
    "copy",
    "scale",
    "triad",
    "add_copy",
    "add_scale",
    "add_triad",
    "copy_scale",
    "copy_triad",
    "scale_triad",
];

#[test]
fn paper_workload_names_match_the_paper() {
    assert_eq!(WorkloadMix::paper_workload_names(), PAPER_WORKLOADS);
}

#[test]
fn every_paper_workload_builds_an_eight_core_mix() {
    for name in PAPER_WORKLOADS {
        let mix = WorkloadMix::by_name(name, 1).unwrap_or_else(|| panic!("missing mix {name}"));
        assert_eq!(mix.cores(), 8, "{name} should build the 8-core rate mode");
    }
}

/// Every defense kind the configuration layer can express.
fn all_defense_kinds(timings: &DramTimings) -> Vec<DefenseKind> {
    vec![
        DefenseKind::NoRp,
        DefenseKind::express_paper_baseline(timings),
        DefenseKind::Express {
            t_mro: timings.t_ras + 4 * timings.t_rc,
            alpha: Alpha::LongDuration,
        },
        DefenseKind::ImpressN {
            alpha: Alpha::Conservative,
        },
        DefenseKind::ImpressN {
            alpha: Alpha::ShortDuration,
        },
        DefenseKind::ImpressN {
            alpha: Alpha::Custom(0.75),
        },
        DefenseKind::impress_p_default(),
        DefenseKind::ImpressP { frac_bits: 0 },
        DefenseKind::ImpressP { frac_bits: 4 },
    ]
}

const ALL_TRACKERS: [TrackerChoice; 5] = [
    TrackerChoice::Graphene,
    TrackerChoice::Para,
    TrackerChoice::Mithril,
    TrackerChoice::Mint,
    TrackerChoice::Prac,
];

#[test]
fn every_defense_tracker_combination_constructs() {
    let timings = DramTimings::ddr5();
    for tracker in ALL_TRACKERS {
        for defense in all_defense_kinds(&timings) {
            let config = ProtectionConfig::paper_default(tracker, defense);
            // Construction must never panic, even for combinations that
            // validate() rejects (callers are told via Result, not via panic).
            let built_tracker = config.build_tracker(&timings);
            let built_defense = config.build_defense(&timings);
            drop((built_tracker, built_defense));

            let expected_invalid =
                matches!(defense, DefenseKind::Express { .. }) && tracker.is_in_dram();
            assert_eq!(
                config.validate().is_err(),
                expected_invalid,
                "unexpected validate() outcome for {tracker:?} + {defense:?}"
            );
        }
    }
}

/// Cross-crate contract for the sharded simulation core: a DefenseKind×TrackerChoice
/// sweep executed through the epoch-phased run loop with more than one shard thread
/// must be bit-identical to the plain (inline) sweep. Under the CI race-check jobs
/// this whole suite also runs with `IMPRESS_THREADS=4`, which routes the
/// `run_sweep`/`run_sharded` defaults through the same pool.
#[test]
fn defense_tracker_sweep_runs_through_the_epoch_phased_loop() {
    let threads = impress_repro::exec::thread_count().max(2);
    let baseline = Configuration::unprotected();
    let configurations: Vec<Configuration> = ALL_TRACKERS
        .iter()
        .map(|&tracker| {
            Configuration::protected(
                format!("{tracker:?}+ImPress-P"),
                ProtectionConfig::paper_default(tracker, DefenseKind::impress_p_default()),
            )
        })
        .collect();

    let plain = ExperimentRunner::new()
        .with_requests_per_core(500)
        .run_sweep_with_threads(1, &["gcc"], &baseline, &configurations);
    let epoch_phased = ExperimentRunner::new()
        .with_requests_per_core(500)
        .with_shard_threads(threads)
        .run_sweep_with_threads(threads, &["gcc"], &baseline, &configurations);

    assert_eq!(plain.len(), ALL_TRACKERS.len());
    for (pc, sc) in plain.iter().zip(&epoch_phased) {
        for (p, s) in pc.iter().zip(sc) {
            assert_eq!(p.configuration, s.configuration);
            assert_eq!(
                p.normalized_performance.to_bits(),
                s.normalized_performance.to_bits(),
                "{} diverged through the epoch-phased loop",
                p.configuration
            );
            assert_eq!(p.output.memory, s.output.memory);
        }
    }
}

#[test]
fn paper_tracker_set_is_the_four_evaluated_trackers() {
    assert_eq!(
        TrackerChoice::PAPER_SET,
        [
            TrackerChoice::Graphene,
            TrackerChoice::Para,
            TrackerChoice::Mithril,
            TrackerChoice::Mint,
        ]
    );
}
