//! Minimal offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access, so the real
//! crate cannot be fetched from crates.io. This crate implements the API surface
//! the workspace's five benches use — [`Criterion`], [`BenchmarkId`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`, and `Bencher::iter` — with compatible signatures, so swapping
//! the real crate back in is a one-line manifest change.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly and
//! then timed over a fixed number of samples; the mean and min/max time per
//! iteration are printed to stdout. This is enough for coarse regression
//! tracking in CI (`cargo bench`) and for `cargo bench --no-run` compile
//! checks, without criterion's statistical machinery.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Benchmarks a single function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a function under `<group>/<id>`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a function with an input value under `<group>/<id>`.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the stand-in; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], accepted by the group methods.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing loop handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: find an iteration count that runs for at least ~1 ms so
        // Instant overhead is amortized, capped to keep total runtime small.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.elapsed_per_iter = Some(elapsed / iters.max(1) as u32);
                return;
            }
            iters *= 4;
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass (also catches panics early, before timing).
    let mut bencher = Bencher::default();
    f(&mut bencher);

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if let Some(d) = bencher.elapsed_per_iter {
            samples.push(d);
        }
    }
    if samples.is_empty() {
        println!("{id:<60} (no timing collected — closure never called iter)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<60} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Groups benchmark functions into a single callable, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness CLI flags (`--bench`, filters) passed by cargo.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("para").0, "para");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("one", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }
}
