//! Minimal offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no network access, so the real
//! crate cannot be fetched from crates.io. This crate implements the subset the
//! workspace's tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments are
//!   drawn from strategies written as `name in strategy`;
//! * integer and floating-point [`Range`](std::ops::Range) /
//!   [`RangeInclusive`](std::ops::RangeInclusive) strategies;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Each property runs 256 deterministic cases (seeded from the test name), so
//! failures are reproducible run-to-run. Shrinking is not implemented: a
//! failing case reports the concrete arguments instead.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod test_runner {
    //! Runtime pieces used by the generated test bodies.

    use super::*;

    /// Deterministic RNG handed to strategies while generating a case.
    #[derive(Debug)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Creates the RNG for a named test, deterministically.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            });
            TestRng(SmallRng::seed_from_u64(seed))
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
        Reject,
        /// A `prop_assert*!` failed with the given message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant (used by the assertion macros).
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// Result type the generated closure bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Number of accepted cases each property must pass.
    pub const CASES: usize = 256;

    /// Drives one property: generates cases until [`CASES`] are accepted or the
    /// rejection budget is exhausted, panicking on the first failure.
    pub fn run_property(
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<String, (String, TestCaseError)>,
    ) {
        let mut rng = TestRng::for_test(name);
        let mut accepted = 0usize;
        let mut attempts = 0usize;
        while accepted < CASES {
            attempts += 1;
            assert!(
                attempts <= CASES * 64,
                "property `{name}` rejected too many cases ({accepted}/{CASES} accepted \
                 after {attempts} attempts) — prop_assume! is too restrictive"
            );
            match case(&mut rng) {
                Ok(_) => accepted += 1,
                Err((_, TestCaseError::Reject)) => continue,
                Err((args, TestCaseError::Fail(msg))) => {
                    panic!("property `{name}` failed: {msg}\n  inputs: {args}")
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;
    use crate::test_runner::TestRng;

    /// Something that can generate values for a property argument.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + unit * (self.end - self.start);
            // Rounding in the affine map can land exactly on the exclusive
            // upper bound for large-magnitude ranges; step back one ulp.
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start() + unit * (self.end() - self.start())
        }
    }
}

/// Defines property tests: `#[test]` functions whose arguments are drawn from
/// strategies, in the `name in strategy` form the real crate accepts.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_property(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), rng);)+
                    let args = [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ");
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => Ok(args),
                        Err(e) => Err((args, e)),
                    }
                });
            }
        )*
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    // The assertion macros resolve textually (they are defined above in this
    // crate), so no prelude import is needed here.
    proptest! {
        /// Integer range strategies stay in bounds.
        #[test]
        fn int_ranges_in_bounds(a in 3u64..17, b in 0u32..=7) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 7);
        }

        /// Float range strategies stay in bounds and assume works.
        #[test]
        fn float_ranges_in_bounds(x in 0.25f64..1.75) {
            prop_assume!(x != 1.0);
            prop_assert!((0.25..1.75).contains(&x));
            prop_assert_ne!(x, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        crate::test_runner::run_property("always_fails", |_rng| {
            Err((
                "x = 1".to_string(),
                crate::test_runner::TestCaseError::fail("forced".to_string()),
            ))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
