//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the real
//! crate cannot be fetched from crates.io. This crate implements exactly the API
//! surface the workspace uses — `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_bool` and `Rng::gen_range` over integer ranges — with the same
//! signatures as `rand 0.8`, so swapping the real crate back in is a one-line
//! manifest change.
//!
//! The generator is xoshiro256++ (the same family `rand`'s `SmallRng` uses on
//! 64-bit targets) seeded through SplitMix64. Streams are deterministic for a
//! given seed, which is all the simulator requires; the exact values differ
//! from crates.io `rand`, which is acceptable because no golden outputs depend
//! on the upstream stream.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Random number generators (only [`SmallRng`] is provided).

    pub use crate::small::SmallRng;
}

mod small;

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 random bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types supported by the range implementations below.
pub trait UniformInt: Copy {
    /// Widens to `u64` for uniform sampling.
    fn to_u64(self) -> u64;
    /// Narrows back from `u64`; the value is guaranteed to fit.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Uniform sample in `[0, bound)` using rejection to avoid modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; values at or above it are
    // rejected so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        // Loose 3-sigma style bound around the expected 2500.
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
